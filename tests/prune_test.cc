#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "gbdt/booster.h"
#include "metrics/metrics.h"
#include "nn/trainer.h"
#include "prune/magnitude.h"
#include "prune/schedule.h"
#include "prune/sensitivity.h"

namespace dnlr::prune {
namespace {

using predict::Architecture;

TEST(MagnitudeTest, DenseMasksAllOnes) {
  nn::Mlp mlp(Architecture(6, {4}), 1);
  const nn::WeightMasks masks = MakeDenseMasks(mlp);
  ASSERT_EQ(masks.size(), 2u);
  for (const mm::Matrix& mask : masks) {
    for (size_t i = 0; i < mask.size(); ++i) {
      EXPECT_FLOAT_EQ(mask.data()[i], 1.0f);
    }
  }
}

TEST(MagnitudeTest, LevelPruneHitsTargetAndKeepsLargest) {
  nn::Mlp mlp(Architecture(10, {10}), 2);
  nn::WeightMasks masks = MakeDenseMasks(mlp);
  // Record the largest-magnitude weight; it must survive.
  const mm::Matrix& w = mlp.layer(0).weight;
  float max_abs = 0.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(w.data()[i]));
  }
  LevelPruneLayer(&mlp, 0, 0.8, &masks);
  EXPECT_NEAR(LayerSparsity(mlp, 0), 0.8, 0.02);
  float surviving_max = 0.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    surviving_max = std::max(surviving_max, std::fabs(w.data()[i]));
  }
  EXPECT_FLOAT_EQ(surviving_max, max_abs);
  // Other layers untouched.
  EXPECT_NEAR(LayerSparsity(mlp, 1), 0.0, 1e-9);
}

TEST(MagnitudeTest, LevelPruneMonotone) {
  nn::Mlp mlp(Architecture(12, {12}), 3);
  nn::WeightMasks masks = MakeDenseMasks(mlp);
  LevelPruneLayer(&mlp, 0, 0.5, &masks);
  const mm::Matrix snapshot = masks[0];
  LevelPruneLayer(&mlp, 0, 0.9, &masks);
  // A weight masked at 50 % stays masked at 90 %.
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (snapshot.data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(masks[0].data()[i], 0.0f);
    }
  }
  EXPECT_NEAR(LayerSparsity(mlp, 0), 0.9, 0.02);
}

TEST(MagnitudeTest, ThresholdPruneUsesSigma) {
  nn::Mlp mlp(Architecture(20, {20}), 4);
  nn::WeightMasks masks = MakeDenseMasks(mlp);
  const float sigma = LayerWeightStddev(mlp, 0, masks);
  const float threshold = ThresholdPruneLayer(&mlp, 0, 1.0, &masks);
  EXPECT_NEAR(threshold, sigma, 1e-5f);
  // With ~N(0, sigma) weights, |w| < sigma prunes about 68 %.
  EXPECT_NEAR(LayerSparsity(mlp, 0), 0.68, 0.10);
  // No surviving weight is below the threshold.
  const mm::Matrix& w = mlp.layer(0).weight;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w.data()[i] != 0.0f) {
      EXPECT_GE(std::fabs(w.data()[i]), threshold);
    }
  }
}

TEST(ScheduleTest, GradualSparsityRampsToTarget) {
  EXPECT_NEAR(GradualSparsity(0.9, 7, 8), 0.9, 1e-12);
  double previous = -1.0;
  for (uint32_t round = 0; round < 8; ++round) {
    const double s = GradualSparsity(0.9, round, 8);
    EXPECT_GT(s, previous);
    EXPECT_LE(s, 0.9 + 1e-12);
    previous = s;
  }
}

class PruneFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig config;
    config.num_queries = 80;
    config.min_docs_per_query = 15;
    config.max_docs_per_query = 25;
    config.num_features = 18;
    config.seed = 66;
    splits_ = new data::DatasetSplits(data::GenerateSyntheticSplits(config));

    gbdt::BoosterConfig teacher_config;
    teacher_config.num_trees = 40;
    teacher_config.num_leaves = 16;
    teacher_config.learning_rate = 0.15;
    gbdt::Booster booster(teacher_config);
    teacher_ = new gbdt::Ensemble(
        booster.TrainLambdaMart(splits_->train, &splits_->valid));

    normalizer_ = new data::ZNormalizer();
    normalizer_->Fit(splits_->train);

    nn::TrainConfig train;
    train.epochs = 15;
    train.batch_size = 128;
    train.adam.learning_rate = 2e-3;
    train.seed = 20;
    nn::Trainer trainer(train);
    student_ = new nn::Mlp(
        Architecture(splits_->train.num_features(), {48, 24}), 20);
    trainer.TrainDistillation(student_, splits_->train, *teacher_,
                              *normalizer_);
  }
  static void TearDownTestSuite() {
    delete splits_;
    delete teacher_;
    delete normalizer_;
    delete student_;
    splits_ = nullptr;
    teacher_ = nullptr;
    normalizer_ = nullptr;
    student_ = nullptr;
  }

  static double EvalNdcg(const nn::Mlp& model) {
    const auto scores =
        nn::ScoreDatasetWithMlp(model, splits_->valid, normalizer_);
    return metrics::MeanNdcg(splits_->valid, scores, 10);
  }

  static data::DatasetSplits* splits_;
  static gbdt::Ensemble* teacher_;
  static data::ZNormalizer* normalizer_;
  static nn::Mlp* student_;
};

data::DatasetSplits* PruneFixture::splits_ = nullptr;
gbdt::Ensemble* PruneFixture::teacher_ = nullptr;
data::ZNormalizer* PruneFixture::normalizer_ = nullptr;
nn::Mlp* PruneFixture::student_ = nullptr;

TEST_F(PruneFixture, IterativeFirstLayerPruneKeepsQuality) {
  nn::Mlp model = *student_;
  const double dense_ndcg = EvalNdcg(model);

  PruneScheduleConfig config;
  config.layer = 0;
  config.target_sparsity = 0.85;
  config.prune_rounds = 8;
  config.finetune_epochs = 6;
  config.train.epochs = 1;
  config.train.batch_size = 128;
  config.train.adam.learning_rate = 1e-3;
  config.train.seed = 21;
  const nn::WeightMasks masks =
      IterativePrune(&model, splits_->train, *teacher_, *normalizer_, config);

  EXPECT_NEAR(LayerSparsity(model, 0), 0.85, 0.03);
  EXPECT_NEAR(LayerSparsity(model, 1), 0.0, 1e-9);
  // Masks agree with the zeros in the weights.
  for (size_t i = 0; i < masks[0].size(); ++i) {
    if (masks[0].data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(model.layer(0).weight.data()[i], 0.0f);
    }
  }
  // Fine-tuned pruned model stays close to (or above: regularization) the
  // dense model.
  const double pruned_ndcg = EvalNdcg(model);
  EXPECT_GT(pruned_ndcg, dense_ndcg - 0.06)
      << "pruned " << pruned_ndcg << " dense " << dense_ndcg;
}

TEST_F(PruneFixture, ThresholdSchedulePrunesProgressively) {
  nn::Mlp model = *student_;
  PruneScheduleConfig config;
  config.layer = 0;
  config.threshold_sensitivity = 0.7;
  config.prune_rounds = 4;
  config.finetune_epochs = 1;
  config.train.epochs = 1;
  config.train.batch_size = 128;
  config.train.seed = 22;
  IterativePrune(&model, splits_->train, *teacher_, *normalizer_, config);
  // Threshold s = 0.7 prunes at least half of a ~normal layer, and the
  // fixed-threshold re-application only adds to it.
  EXPECT_GT(LayerSparsity(model, 0), 0.45);
}

TEST_F(PruneFixture, AllHiddenLayersMode) {
  nn::Mlp model = *student_;
  PruneScheduleConfig config;
  config.layer = kAllHiddenLayers;
  config.target_sparsity = 0.6;
  config.prune_rounds = 3;
  config.finetune_epochs = 1;
  config.train.epochs = 1;
  config.train.batch_size = 128;
  config.train.seed = 23;
  IterativePrune(&model, splits_->train, *teacher_, *normalizer_, config);
  EXPECT_NEAR(LayerSparsity(model, 0), 0.6, 0.05);
  EXPECT_NEAR(LayerSparsity(model, 1), 0.6, 0.05);
  // Final scoring layer untouched.
  EXPECT_NEAR(LayerSparsity(model, 2), 0.0, 1e-9);
}

TEST_F(PruneFixture, StaticSensitivityDegradesWithSparsity) {
  SensitivityConfig config;
  config.sparsity_levels = {0.5, 0.99};
  config.dynamic = false;
  const SensitivityResult result = AnalyzeSensitivity(
      *student_, splits_->train, splits_->valid, *teacher_, *normalizer_,
      config);
  ASSERT_EQ(result.ndcg.size(), student_->num_layers() - 1);
  for (const auto& row : result.ndcg) {
    ASSERT_EQ(row.size(), 2u);
    // Pruning 99 % with no retraining cannot beat pruning 50 % by much.
    EXPECT_LE(row[1], row[0] + 0.02);
  }
  EXPECT_GT(result.dense_ndcg, 0.0);
}

TEST_F(PruneFixture, DynamicSensitivityRecoversQuality) {
  SensitivityConfig config;
  config.sparsity_levels = {0.9};
  config.dynamic = true;
  config.finetune.epochs = 4;
  config.finetune.batch_size = 128;
  config.finetune.adam.learning_rate = 1e-3;
  config.finetune.seed = 24;

  SensitivityConfig static_config = config;
  static_config.dynamic = false;

  const SensitivityResult dynamic_result = AnalyzeSensitivity(
      *student_, splits_->train, splits_->valid, *teacher_, *normalizer_,
      config);
  const SensitivityResult static_result = AnalyzeSensitivity(
      *student_, splits_->train, splits_->valid, *teacher_, *normalizer_,
      static_config);
  // Fine-tuning after pruning the first layer must not hurt (the paper even
  // finds it helps: pruning as regularization).
  EXPECT_GE(dynamic_result.ndcg[0][0], static_result.ndcg[0][0] - 0.02);
}

}  // namespace
}  // namespace dnlr::prune
