#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace dnlr::metrics {
namespace {

TEST(RankTest, DescendingWithStableTies) {
  const std::vector<float> scores{1.0f, 3.0f, 3.0f, 0.5f};
  const auto order = RankByScore(scores);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2, 0, 3}));
}

TEST(RankTest, NanScoresRankLastDeterministically) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> scores{nan, 2.0f, nan, inf, -inf, 0.5f};
  const auto order = RankByScore(scores);
  // Finite and infinite scores descend first; NaNs sink to the bottom in
  // stable (ascending-index) order instead of corrupting the sort.
  EXPECT_EQ(order, (std::vector<uint32_t>{3, 1, 5, 4, 0, 2}));
}

TEST(RankTest, AllNanKeepsInputOrder) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> scores{nan, nan, nan};
  EXPECT_EQ(RankByScore(scores), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(RankTest, ManyInterleavedNansStressStrictWeakOrdering) {
  // The `a > b` comparator's strict-weak-ordering violation under NaN only
  // bites std::sort/std::stable_sort above their small-array thresholds, so
  // hammer a few hundred elements with NaN in every other slot (this is the
  // regression shape that crashed/garbled before DescendingNanLast).
  Rng rng(31);
  std::vector<float> scores(512);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = i % 2 == 0 ? std::numeric_limits<float>::quiet_NaN()
                           : static_cast<float>(rng.Normal());
  }
  const auto order = RankByScore(scores);
  ASSERT_EQ(order.size(), scores.size());
  std::vector<bool> seen(scores.size(), false);
  for (const uint32_t idx : order) {
    ASSERT_LT(idx, scores.size());
    EXPECT_FALSE(seen[idx]) << "index ranked twice: " << idx;
    seen[idx] = true;
  }
  // All 256 NaNs occupy the bottom half, in ascending-index order.
  for (size_t rank = 256; rank < 512; ++rank) {
    EXPECT_TRUE(std::isnan(scores[order[rank]])) << "rank " << rank;
    if (rank > 256) {
      EXPECT_LT(order[rank - 1], order[rank]);
    }
  }
}

TEST(DcgTest, HandComputedExample) {
  // Ranking by score puts labels in order [3, 2, 0].
  const std::vector<float> labels{2.0f, 3.0f, 0.0f};
  const std::vector<float> scores{0.5f, 0.9f, 0.1f};
  const double expected = (std::exp2(3.0) - 1.0) / std::log2(2.0) +
                          (std::exp2(2.0) - 1.0) / std::log2(3.0) +
                          0.0 / std::log2(4.0);
  EXPECT_NEAR(Dcg(labels, scores, 0), expected, 1e-12);
}

TEST(DcgTest, CutoffLimitsPositions) {
  const std::vector<float> labels{1.0f, 1.0f, 1.0f};
  const std::vector<float> scores{3.0f, 2.0f, 1.0f};
  EXPECT_LT(Dcg(labels, scores, 1), Dcg(labels, scores, 3));
}

TEST(DcgTest, IdealDcgNanLabelsSinkWithoutUb) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // Enough elements to push std::sort past its insertion-sort threshold,
  // with NaN labels interleaved (std::greater here was UB before the
  // DescendingNanLast comparator).
  std::vector<float> labels(64, 1.0f);
  for (size_t i = 0; i < labels.size(); i += 3) labels[i] = nan;
  const double ideal = IdealDcg(labels, 10);
  EXPECT_TRUE(std::isfinite(ideal));
  // The top-10 cutoff is filled by the valid grade-1 labels, so NaNs never
  // contribute gain.
  EXPECT_NEAR(ideal, IdealDcg(std::vector<float>(43, 1.0f), 10), 1e-12);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const std::vector<float> labels{0.0f, 1.0f, 2.0f, 4.0f};
  const std::vector<float> scores{0.0f, 1.0f, 2.0f, 4.0f};
  EXPECT_NEAR(Ndcg(labels, scores, 10), 1.0, 1e-12);
}

TEST(NdcgTest, WorstRankingBelowOne) {
  const std::vector<float> labels{0.0f, 0.0f, 4.0f};
  const std::vector<float> scores{3.0f, 2.0f, 1.0f};
  const double ndcg = Ndcg(labels, scores, 10);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LT(ndcg, 0.6);
}

TEST(NdcgTest, AllZeroLabelsGiveSentinel) {
  const std::vector<float> labels{0.0f, 0.0f};
  const std::vector<float> scores{1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(Ndcg(labels, scores, 10), -1.0);
}

TEST(NdcgTest, InvariantToScoreMonotoneTransform) {
  Rng rng(11);
  std::vector<float> labels(20);
  std::vector<float> scores(20);
  for (int i = 0; i < 20; ++i) {
    labels[i] = static_cast<float>(rng.Below(5));
    scores[i] = static_cast<float>(rng.Normal());
  }
  std::vector<float> transformed(20);
  for (int i = 0; i < 20; ++i) transformed[i] = 2.0f * scores[i] + 7.0f;
  EXPECT_DOUBLE_EQ(Ndcg(labels, scores, 10),
                   Ndcg(labels, transformed, 10));
}

TEST(MapTest, PerfectRankingIsOne) {
  const std::vector<float> labels{2.0f, 1.0f, 0.0f};
  const std::vector<float> scores{3.0f, 2.0f, 1.0f};
  EXPECT_NEAR(AveragePrecision(labels, scores), 1.0, 1e-12);
}

TEST(MapTest, KnownValue) {
  // Relevant docs at ranks 2 and 4 -> AP = (1/2 + 2/4) / 2 = 0.5.
  const std::vector<float> labels{0.0f, 1.0f, 0.0f, 1.0f};
  const std::vector<float> scores{4.0f, 3.0f, 2.0f, 1.0f};
  EXPECT_NEAR(AveragePrecision(labels, scores), 0.5, 1e-12);
}

TEST(MapTest, NoRelevantGivesSentinel) {
  const std::vector<float> labels{0.0f, 0.0f};
  const std::vector<float> scores{1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, scores), -1.0);
}

data::Dataset TwoQueryDataset() {
  data::Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{0.0f}, 2.0f);
  dataset.AddDocument(std::vector<float>{0.0f}, 0.0f);
  dataset.BeginQuery(2);
  dataset.AddDocument(std::vector<float>{0.0f}, 0.0f);
  dataset.AddDocument(std::vector<float>{0.0f}, 1.0f);
  return dataset;
}

TEST(AggregateTest, MeanNdcgAveragesQueries) {
  data::Dataset dataset = TwoQueryDataset();
  // Query 1 ranked perfectly, query 2 ranked worst.
  const std::vector<float> scores{2.0f, 1.0f, 2.0f, 1.0f};
  const auto per_query = PerQueryNdcg(dataset, scores, 10);
  ASSERT_EQ(per_query.size(), 2u);
  EXPECT_NEAR(per_query[0], 1.0, 1e-12);
  EXPECT_LT(per_query[1], 1.0);
  EXPECT_NEAR(MeanNdcg(dataset, scores, 10),
              (per_query[0] + per_query[1]) / 2.0, 1e-12);
}

TEST(AggregateTest, SentinelQueriesSkipped) {
  data::Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{0.0f}, 0.0f);  // unjudgeable
  dataset.BeginQuery(2);
  dataset.AddDocument(std::vector<float>{0.0f}, 1.0f);
  const std::vector<float> scores{0.0f, 0.0f};
  EXPECT_NEAR(MeanNdcg(dataset, scores, 10), 1.0, 1e-12);
  EXPECT_NEAR(MeanAp(dataset, scores), 1.0, 1e-12);
}

TEST(AggregateTest, MeanOverValidQueriesEmptyIsZero) {
  const std::vector<double> values{-1.0, -1.0};
  EXPECT_DOUBLE_EQ(MeanOverValidQueries(values), 0.0);
}

TEST(AggregateTest, SentinelConstantMatchesDocumentedValue) {
  // The -1.0 sentinel is part of the serialized-metrics contract (external
  // tooling greps for it); kInvalidQuery must stay exactly -1.0 and every
  // per-query metric must return it, not some other negative value.
  EXPECT_DOUBLE_EQ(kInvalidQuery, -1.0);
  const std::vector<float> labels{0.0f, 0.0f};
  const std::vector<float> scores{1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(Ndcg(labels, scores, 10), kInvalidQuery);
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, scores), kInvalidQuery);
  EXPECT_DOUBLE_EQ(Err(labels, scores, 10), kInvalidQuery);
}

TEST(AggregateTest, MeanOverValidQueriesSkipsExactlyTheSentinel) {
  // 0.0 is a VALID metric value (a query ranked as badly as possible) and
  // must count toward the mean; only the sentinel is skipped.
  const std::vector<double> values{0.8, kInvalidQuery, 0.0, 0.4};
  EXPECT_NEAR(MeanOverValidQueries(values), (0.8 + 0.0 + 0.4) / 3.0, 1e-12);
}

TEST(ErrTest, SingleMaxGradeDocAtTopGivesHalfIshMass) {
  // One grade-4 doc ranked first: ERR = (2^4 - 1) / 2^4 = 0.9375.
  const std::vector<float> labels{4.0f, 0.0f};
  const std::vector<float> scores{2.0f, 1.0f};
  EXPECT_NEAR(Err(labels, scores, 10), 15.0 / 16.0, 1e-12);
}

TEST(ErrTest, LowerRankDiscounted) {
  const std::vector<float> labels{0.0f, 4.0f};
  const std::vector<float> scores{2.0f, 1.0f};  // relevant doc at rank 2
  EXPECT_NEAR(Err(labels, scores, 10), (15.0 / 16.0) / 2.0, 1e-12);
}

TEST(ErrTest, CascadeStopsAfterSatisfaction) {
  // Two grade-4 docs: second contributes only through the 1/16 chance the
  // first did not satisfy.
  const std::vector<float> labels{4.0f, 4.0f};
  const std::vector<float> scores{2.0f, 1.0f};
  const double p = 15.0 / 16.0;
  EXPECT_NEAR(Err(labels, scores, 10), p + (1.0 - p) * p / 2.0, 1e-12);
}

TEST(ErrTest, NoRelevantGivesSentinel) {
  const std::vector<float> labels{0.0f, 0.0f};
  const std::vector<float> scores{1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(Err(labels, scores, 10), -1.0);
}

TEST(ErrTest, CutoffRespected) {
  const std::vector<float> labels{0.0f, 0.0f, 4.0f};
  const std::vector<float> scores{3.0f, 2.0f, 1.0f};
  EXPECT_DOUBLE_EQ(Err(labels, scores, 2), 0.0);
  EXPECT_GT(Err(labels, scores, 3), 0.0);
}

TEST(ErrTest, MeanErrAggregates) {
  data::Dataset dataset = TwoQueryDataset();
  const std::vector<float> scores{2.0f, 1.0f, 2.0f, 1.0f};
  const auto per_query = PerQueryErr(dataset, scores, 10);
  ASSERT_EQ(per_query.size(), 2u);
  EXPECT_NEAR(MeanErr(dataset, scores, 10),
              (per_query[0] + per_query[1]) / 2.0, 1e-12);
}

TEST(FisherTest, IdenticalSystemsNotSignificant) {
  std::vector<double> a(50, 0.5);
  EXPECT_GT(FisherRandomizationPValue(a, a, 2000), 0.9);
}

TEST(FisherTest, ClearlyDifferentSystemsSignificant) {
  Rng rng(21);
  std::vector<double> a(200);
  std::vector<double> b(200);
  for (int q = 0; q < 200; ++q) {
    const double base = rng.Uniform(0.3, 0.7);
    a[q] = base + 0.05 + rng.Normal(0.0, 0.01);
    b[q] = base;
  }
  EXPECT_LT(FisherRandomizationPValue(a, b, 2000), 0.05);
}

TEST(FisherTest, NoisyEqualSystemsNotSignificant) {
  Rng rng(22);
  std::vector<double> a(100);
  std::vector<double> b(100);
  for (int q = 0; q < 100; ++q) {
    const double base = rng.Uniform(0.3, 0.7);
    a[q] = base + rng.Normal(0.0, 0.05);
    b[q] = base + rng.Normal(0.0, 0.05);
  }
  EXPECT_GT(FisherRandomizationPValue(a, b, 2000), 0.05);
}

TEST(FisherTest, SentinelPairsExcluded) {
  std::vector<double> a{0.9, -1.0, 0.8};
  std::vector<double> b{0.9, 0.5, 0.8};
  // Only two comparable queries with zero difference -> p = 1.
  EXPECT_GT(FisherRandomizationPValue(a, b, 500), 0.9);
}

TEST(FisherTest, SymmetricInArguments) {
  Rng rng(23);
  std::vector<double> a(60);
  std::vector<double> b(60);
  for (int q = 0; q < 60; ++q) {
    a[q] = rng.Uniform(0.0, 1.0);
    b[q] = rng.Uniform(0.0, 1.0);
  }
  const double p_ab = FisherRandomizationPValue(a, b, 3000, 5);
  const double p_ba = FisherRandomizationPValue(b, a, 3000, 5);
  EXPECT_NEAR(p_ab, p_ba, 0.05);
}

}  // namespace
}  // namespace dnlr::metrics
