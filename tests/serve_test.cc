#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "serve/deadline.h"
#include "serve/engine.h"
#include "serve/fault_injection.h"
#include "serve/ladder.h"
#include "serve/latency.h"

namespace dnlr::serve {
namespace {

constexpr uint32_t kDocs = 8;
constexpr uint32_t kStride = 4;

std::vector<float> MakeDocs() {
  std::vector<float> docs(kDocs * kStride);
  for (size_t i = 0; i < docs.size(); ++i) {
    docs[i] = static_cast<float>(i) * 0.25f;
  }
  return docs;
}

/// Infallible test double scoring every document with a constant, so tests
/// can tell which rung answered from the scores alone.
class ConstantScorer : public forest::DocumentScorer {
 public:
  explicit ConstantScorer(float value) : value_(value) {}
  std::string_view name() const override { return "constant"; }
  void Score(const float*, uint32_t count, uint32_t, float* out) const override {
    for (uint32_t i = 0; i < count; ++i) out[i] = value_;
  }

 private:
  float value_;
};

/// Fallible test double that fails its first `fail_first` calls with a
/// transient Internal status, then scores with a constant.
class FlakyScorer : public FallibleScorer {
 public:
  FlakyScorer(uint32_t fail_first, float value)
      : fail_first_(fail_first), value_(value) {}

  std::string_view name() const override { return "flaky"; }

  Status TryScore(const float*, uint32_t count, uint32_t,
                  float* out) const override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) < fail_first_) {
      return Status::Internal("flaky: injected failure");
    }
    for (uint32_t i = 0; i < count; ++i) out[i] = value_;
    return Status::Ok();
  }

  uint32_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  uint32_t fail_first_;
  float value_;
  mutable std::atomic<uint32_t> calls_{0};
};

/// Fallible test double that blocks inside TryScore until released, so tests
/// can hold a worker busy and observe queue behaviour deterministically.
class GatedScorer : public FallibleScorer {
 public:
  std::string_view name() const override { return "gated"; }

  Status TryScore(const float*, uint32_t count, uint32_t,
                  float* out) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    for (uint32_t i = 0; i < count; ++i) out[i] = 1.0f;
    return Status::Ok();
  }

  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ > 0; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable uint32_t entered_ = 0;
  mutable bool open_ = false;
};

// ---------------------------------------------------------------------------
// Deadline math.

TEST(DeadlineTest, DefaultIsInfinite) {
  FakeClock clock;
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired(clock));
  clock.AdvanceMicros(1u << 30);
  EXPECT_FALSE(d.Expired(clock));
}

TEST(DeadlineTest, ZeroBudgetIsBornExpired) {
  FakeClock clock;
  const Deadline d = Deadline::AfterMicros(clock, 0);
  EXPECT_TRUE(d.Expired(clock));
  EXPECT_LE(d.RemainingMicros(clock), 0);
}

TEST(DeadlineTest, RemainingCountsDownAndGoesNegative) {
  FakeClock clock;
  clock.AdvanceMicros(500);
  const Deadline d = Deadline::AfterMicros(clock, 100);
  EXPECT_EQ(d.RemainingMicros(clock), 100);
  clock.AdvanceMicros(60);
  EXPECT_EQ(d.RemainingMicros(clock), 40);
  EXPECT_FALSE(d.Expired(clock));
  clock.AdvanceMicros(60);
  EXPECT_EQ(d.RemainingMicros(clock), -20);
  EXPECT_TRUE(d.Expired(clock));
}

TEST(DeadlineTest, HugeBudgetSaturatesToInfinite) {
  FakeClock clock;
  clock.AdvanceMicros(123);
  const Deadline d =
      Deadline::AfterMicros(clock, std::numeric_limits<uint64_t>::max() - 10);
  EXPECT_TRUE(d.IsInfinite());
}

// ---------------------------------------------------------------------------
// Ladder construction and rung selection.

TEST(LadderTest, RejectsBadRungs) {
  ConstantScorer inner(1.0f);
  InfallibleScorerAdapter a(&inner);
  DegradationLadder ladder;
  EXPECT_EQ(ladder.AddRung("null", nullptr, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ladder.AddRung("nan", &a, std::nan("")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ladder.AddRung("negative", &a, -1.0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(ladder.AddRung("strong", &a, 2.0).ok());
  // Rungs must be strongest (most expensive) first.
  EXPECT_EQ(ladder.AddRung("more-expensive", &a, 3.0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(ladder.AddRung("weak", &a, 1.0).ok());
  EXPECT_EQ(ladder.num_rungs(), 2u);
}

TEST(LadderTest, PickRungChoosesStrongestThatFits) {
  ConstantScorer inner(1.0f);
  InfallibleScorerAdapter a(&inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("strong", &a, 10.0).ok());
  ASSERT_TRUE(ladder.AddRung("mid", &a, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("floor", &a, 0.5).ok());

  // 10 docs, safety 1.0: costs are 100 / 20 / 5 micros.
  EXPECT_EQ(ladder.PickRung(200.0, 10, 1.0), 0);
  EXPECT_EQ(ladder.PickRung(50.0, 10, 1.0), 1);
  EXPECT_EQ(ladder.PickRung(6.0, 10, 1.0), 2);
  EXPECT_EQ(ladder.PickRung(1.0, 10, 1.0), -1);
  // Safety factor scales the predicted cost.
  EXPECT_EQ(ladder.PickRung(100.0, 10, 2.0), 1);
  // The availability veto skips quarantined rungs.
  EXPECT_EQ(ladder.PickRung(200.0, 10, 1.0, [](size_t i) { return i != 0; }),
            1);
}

// ---------------------------------------------------------------------------
// Fault injection determinism.

TEST(FaultInjectionTest, SameSeedSameSchedule) {
  const std::vector<float> docs = MakeDocs();
  std::vector<float> out(kDocs);
  ConstantScorer inner(1.0f);
  FaultInjectionConfig config;
  config.transient_fault_probability = 0.3;
  config.non_finite_probability = 0.2;
  config.seed = 7;

  FakeClock clock_a, clock_b;
  FaultInjectingScorer a(&inner, config, &clock_a);
  FaultInjectingScorer b(&inner, config, &clock_b);
  std::vector<bool> faults_a, faults_b;
  for (int i = 0; i < 200; ++i) {
    faults_a.push_back(!a.TryScore(docs.data(), kDocs, kStride, out.data()).ok());
    faults_b.push_back(!b.TryScore(docs.data(), kDocs, kStride, out.data()).ok());
  }
  EXPECT_EQ(faults_a, faults_b);
  EXPECT_EQ(a.transient_faults_injected(), b.transient_faults_injected());
  EXPECT_EQ(a.batches_poisoned(), b.batches_poisoned());
  EXPECT_GT(a.transient_faults_injected(), 0u);
  EXPECT_GT(a.batches_poisoned(), 0u);
}

TEST(FaultInjectionTest, PoisonProducesNonFinite) {
  const std::vector<float> docs = MakeDocs();
  std::vector<float> out(kDocs);
  ConstantScorer inner(1.0f);
  FaultInjectionConfig config;
  config.non_finite_probability = 1.0;
  FakeClock clock;
  FaultInjectingScorer faulty(&inner, config, &clock);
  ASSERT_TRUE(faulty.TryScore(docs.data(), kDocs, kStride, out.data()).ok());
  bool any_non_finite = false;
  for (const float s : out) any_non_finite |= !std::isfinite(s);
  EXPECT_TRUE(any_non_finite);
  EXPECT_EQ(faulty.batches_poisoned(), 1u);
}

TEST(FaultInjectionTest, SpikeAdvancesClock) {
  const std::vector<float> docs = MakeDocs();
  std::vector<float> out(kDocs);
  ConstantScorer inner(1.0f);
  FaultInjectionConfig config;
  config.latency_spike_probability = 1.0;
  config.spike_micros = 777;
  FakeClock clock;
  FaultInjectingScorer faulty(&inner, config, &clock);
  faulty.Score(docs.data(), kDocs, kStride, out.data());
  EXPECT_EQ(clock.NowMicros(), 777u);
  EXPECT_EQ(faulty.spikes_injected(), 1u);
}

TEST(FaultInjectionTest, BurstModeIsSeededAndRunsExactLengths) {
  const std::vector<float> docs = MakeDocs();
  std::vector<float> out(kDocs);
  ConstantScorer inner(1.0f);
  FaultInjectionConfig config;
  config.burst_trigger_probability = 0.05;
  config.burst_length = 7;
  config.seed = 123;

  auto run = [&](FakeClock* clock, uint64_t* burst_batches) {
    FaultInjectingScorer faulty(&inner, config, clock);
    std::vector<bool> fails;
    for (int i = 0; i < 400; ++i) {
      fails.push_back(
          !faulty.TryScore(docs.data(), kDocs, kStride, out.data()).ok());
    }
    *burst_batches = faulty.burst_batches_injected();
    return fails;
  };

  FakeClock clock_a, clock_b;
  uint64_t bursts_a = 0, bursts_b = 0;
  const std::vector<bool> fails_a = run(&clock_a, &bursts_a);
  const std::vector<bool> fails_b = run(&clock_b, &bursts_b);
  EXPECT_EQ(fails_a, fails_b);  // one seed reproduces the outage schedule
  EXPECT_EQ(bursts_a, bursts_b);
  EXPECT_GT(bursts_a, 0u);

  // With no i.i.d. faults configured, every failure is a burst batch and
  // every maximal failure run is a whole number of back-to-back bursts.
  uint64_t failures = 0;
  size_t run_length = 0;
  for (size_t i = 0; i <= fails_a.size(); ++i) {
    if (i < fails_a.size() && fails_a[i]) {
      ++failures;
      ++run_length;
    } else if (run_length > 0) {
      EXPECT_EQ(run_length % config.burst_length, 0u) << "ending at " << i;
      run_length = 0;
    }
  }
  EXPECT_EQ(failures, bursts_a);
}

TEST(FaultInjectionTest, SharedBurstStateCorrelatesInjectors) {
  const std::vector<float> docs = MakeDocs();
  std::vector<float> out(kDocs);
  ConstantScorer inner(1.0f);
  FaultInjectionConfig config;  // no i.i.d. faults: bursts only
  auto burst = std::make_shared<FaultBurstState>(
      /*trigger_probability=*/0.03, /*length=*/10, /*seed=*/99);

  // Two rungs of one shard share the outage domain.
  FakeClock clock;
  FaultInjectingScorer rung_a(&inner, config, burst, &clock);
  FaultInjectingScorer rung_b(&inner, config, burst, &clock);
  std::vector<bool> combined;  // strict alternation: a, b, a, b, ...
  for (int i = 0; i < 300; ++i) {
    combined.push_back(
        !rung_a.TryScore(docs.data(), kDocs, kStride, out.data()).ok());
    combined.push_back(
        !rung_b.TryScore(docs.data(), kDocs, kStride, out.data()).ok());
  }

  // The shared schedule spans both injectors: in call order, maximal
  // failure runs are whole bursts, so any burst of length >= 2 takes BOTH
  // rungs down together — the correlated outage i.i.d. faults cannot model.
  size_t run_length = 0;
  for (size_t i = 0; i <= combined.size(); ++i) {
    if (i < combined.size() && combined[i]) {
      ++run_length;
    } else if (run_length > 0) {
      // The loop may end mid-burst; only completed runs must be whole
      // bursts.
      if (i < combined.size()) {
        EXPECT_EQ(run_length % 10, 0u) << "ending at " << i;
      }
      run_length = 0;
    }
  }
  EXPECT_GT(burst->bursts_triggered(), 0u);
  EXPECT_GT(rung_a.burst_batches_injected(), 0u);
  EXPECT_GT(rung_b.burst_batches_injected(), 0u);
  // Every burst batch landed on one of the two rungs; the final burst may
  // have been truncated by the end of the loop.
  const uint64_t total_burst_batches =
      rung_a.burst_batches_injected() + rung_b.burst_batches_injected();
  EXPECT_LE(total_burst_batches, burst->bursts_triggered() * 10);
  EXPECT_GT(total_burst_batches, (burst->bursts_triggered() - 1) * 10);
}

TEST(FaultInjectionTest, EnablingBurstsDoesNotShiftIidSchedule) {
  const std::vector<float> docs = MakeDocs();
  std::vector<float> out(kDocs);
  ConstantScorer inner(1.0f);
  FaultInjectionConfig iid_only;
  iid_only.transient_fault_probability = 0.25;
  iid_only.seed = 7;
  FaultInjectionConfig with_bursts = iid_only;
  with_bursts.burst_trigger_probability = 0.05;
  with_bursts.burst_length = 5;

  FakeClock clock_a, clock_b;
  FaultInjectingScorer a(&inner, iid_only, &clock_a);
  FaultInjectingScorer b(&inner, with_bursts, &clock_b);
  uint64_t extra = 0;
  for (int i = 0; i < 400; ++i) {
    const bool fail_a =
        !a.TryScore(docs.data(), kDocs, kStride, out.data()).ok();
    const bool fail_b =
        !b.TryScore(docs.data(), kDocs, kStride, out.data()).ok();
    // Bursts only ADD failures on top of the identical i.i.d. stream.
    if (fail_a) {
      EXPECT_TRUE(fail_b) << "call " << i;
    }
    extra += fail_b && !fail_a;
  }
  // Every extra failure is a burst batch (a burst batch can coincide with
  // an i.i.d. failure, so this is <=, not ==).
  EXPECT_GT(extra, 0u);
  EXPECT_LE(extra, b.burst_batches_injected());
}

// ---------------------------------------------------------------------------
// Engine: rung selection, degradation, shedding.

struct TwoRungFixture {
  ConstantScorer strong_inner{2.0f};
  ConstantScorer floor_inner{1.0f};
  InfallibleScorerAdapter strong{&strong_inner};
  InfallibleScorerAdapter floor{&floor_inner};
  DegradationLadder ladder;

  TwoRungFixture(double strong_cost = 10.0, double floor_cost = 1.0) {
    EXPECT_TRUE(ladder.AddRung("strong", &strong, strong_cost).ok());
    EXPECT_TRUE(ladder.AddRung("floor", &floor, floor_cost).ok());
  }
};

ServingConfig OneWorkerConfig() {
  ServingConfig config;
  config.num_workers = 1;
  config.safety_factor = 1.0;
  return config;
}

TEST(ServingEngineTest, AmpleBudgetServesStrongestRung) {
  const std::vector<float> docs = MakeDocs();
  FakeClock clock;
  TwoRungFixture fix;
  ServingEngine engine(&fix.ladder, OneWorkerConfig(), &clock);

  const ServeResponse resp =
      engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, 0);
  EXPECT_EQ(resp.rung_name, "strong");
  EXPECT_FALSE(resp.degraded);
  ASSERT_EQ(resp.scores.size(), kDocs);
  for (const float s : resp.scores) EXPECT_EQ(s, 2.0f);
  EXPECT_EQ(engine.counters().Snapshot().served_by_rung[0], 1u);
}

TEST(ServingEngineTest, TightBudgetFallsToFloorRung) {
  const std::vector<float> docs = MakeDocs();
  FakeClock clock;
  TwoRungFixture fix;  // strong = 80 us for 8 docs, floor = 8 us.
  ServingEngine engine(&fix.ladder, OneWorkerConfig(), &clock);

  const ServeResponse resp = engine.ScoreSync(docs.data(), kDocs, kStride, 20);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, 1);
  EXPECT_EQ(resp.rung_name, "floor");
  for (const float s : resp.scores) EXPECT_EQ(s, 1.0f);
}

TEST(ServingEngineTest, ExpiredDeadlineIsShedNotServed) {
  const std::vector<float> docs = MakeDocs();
  FakeClock clock;
  TwoRungFixture fix;
  ServingEngine engine(&fix.ladder, OneWorkerConfig(), &clock);

  const ServeResponse resp = engine.ScoreSync(docs.data(), kDocs, kStride, 0);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.rung, -1);
  EXPECT_TRUE(resp.scores.empty());
  EXPECT_GE(engine.counters().Snapshot().shed_deadline, 1u);
}

TEST(ServingEngineTest, BudgetBelowCheapestRungIsShedNotHung) {
  const std::vector<float> docs = MakeDocs();
  FakeClock clock;
  TwoRungFixture fix;  // floor costs 8 us for 8 docs; offer 4.
  ServingEngine engine(&fix.ladder, OneWorkerConfig(), &clock);

  const ServeResponse resp = engine.ScoreSync(docs.data(), kDocs, kStride, 4);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.rung, -1);
  EXPECT_GE(engine.counters().Snapshot().shed_deadline, 1u);
}

TEST(ServingEngineTest, NullDocsRejectedImmediately) {
  FakeClock clock;
  TwoRungFixture fix;
  ServingEngine engine(&fix.ladder, OneWorkerConfig(), &clock);
  ServeRequest request;
  request.docs = nullptr;
  request.count = 3;
  request.stride = kStride;
  EXPECT_EQ(engine.Submit(request).get().status.code(),
            StatusCode::kInvalidArgument);
}

TEST(ServingEngineTest, StoppedEngineRejectsWork) {
  const std::vector<float> docs = MakeDocs();
  FakeClock clock;
  TwoRungFixture fix;
  ServingEngine engine(&fix.ladder, OneWorkerConfig(), &clock);
  engine.Stop();
  ServeRequest request;
  request.docs = docs.data();
  request.count = kDocs;
  request.stride = kStride;
  EXPECT_EQ(engine.Submit(request).get().status.code(),
            StatusCode::kResourceExhausted);
  // Shed-by-cause: a stopped engine tags shed_stopped, never
  // shed_queue_full — health scoring must not read shutdown as saturation.
  const ServeCountersSnapshot counters = engine.counters().Snapshot();
  EXPECT_EQ(counters.shed_stopped, 1u);
  EXPECT_EQ(counters.shed_queue_full, 0u);
}

TEST(ServingEngineTest, FullQueueShedsWithResourceExhausted) {
  const std::vector<float> docs = MakeDocs();
  GatedScorer gated;
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("gated", &gated, 1.0).ok());
  ServingConfig config = OneWorkerConfig();
  config.queue_capacity = 1;
  FakeClock clock;
  ServingEngine engine(&ladder, config, &clock);

  ServeRequest request;
  request.docs = docs.data();
  request.count = kDocs;
  request.stride = kStride;

  // First request occupies the worker (blocked inside the gate)...
  std::future<ServeResponse> first = engine.Submit(request);
  gated.WaitUntilEntered();
  // ...second fills the queue, third must shed immediately.
  std::future<ServeResponse> second = engine.Submit(request);
  std::future<ServeResponse> third = engine.Submit(request);
  const ServeResponse shed = third.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(engine.counters().Snapshot().shed_queue_full, 1u);
  // The converse of the shed-by-cause split: saturation is not shutdown.
  EXPECT_EQ(engine.counters().Snapshot().shed_stopped, 0u);

  gated.Open();
  EXPECT_TRUE(first.get().status.ok());
  EXPECT_TRUE(second.get().status.ok());
}

// ---------------------------------------------------------------------------
// Engine: faults, retries, timeouts, circuit breaker.

TEST(ServingEngineTest, TransientFaultIsRetriedThenSucceeds) {
  const std::vector<float> docs = MakeDocs();
  FlakyScorer flaky(1, 3.0f);  // first call fails, second succeeds
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("flaky", &flaky, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("floor", &floor, 1.0).ok());
  FakeClock clock;
  ServingEngine engine(&ladder, OneWorkerConfig(), &clock);

  const ServeResponse resp =
      engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, 0);  // retry kept the request on the strong rung
  EXPECT_GE(resp.retries, 1u);
  for (const float s : resp.scores) EXPECT_EQ(s, 3.0f);
  const ServeCountersSnapshot counters = engine.counters().Snapshot();
  EXPECT_GE(counters.retries, 1u);
  EXPECT_GE(counters.transient_faults, 1u);
  EXPECT_EQ(flaky.calls(), 2u);
}

TEST(ServingEngineTest, NonFiniteScoresNeverReachTheResponse) {
  const std::vector<float> docs = MakeDocs();
  ConstantScorer strong_inner(2.0f);
  FaultInjectionConfig fic;
  fic.non_finite_probability = 1.0;  // top rung always emits NaN/Inf
  FakeClock clock;
  FaultInjectingScorer poisoned(&strong_inner, fic, &clock);
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("poisoned", &poisoned, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("floor", &floor, 1.0).ok());
  ServingEngine engine(&ladder, OneWorkerConfig(), &clock);

  const ServeResponse resp =
      engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, 1);  // fell past the poisoned rung
  EXPECT_TRUE(resp.degraded);
  for (const float s : resp.scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_EQ(s, 1.0f);
  }
  EXPECT_GE(engine.counters().Snapshot().non_finite_batches, 1u);
}

TEST(ServingEngineTest, StuckRungTimesOutAndOpensCircuit) {
  const std::vector<float> docs = MakeDocs();
  ConstantScorer strong_inner(2.0f);
  FaultInjectionConfig fic;
  fic.latency_spike_probability = 1.0;
  fic.spike_micros = 10'000;  // every call blows way past the deadline
  FakeClock clock;
  FaultInjectingScorer stuck(&strong_inner, fic, &clock);
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("stuck", &stuck, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("floor", &floor, 1.0).ok());
  ServingConfig config = OneWorkerConfig();
  config.max_attempts_per_rung = 1;
  config.circuit_failure_threshold = 2;
  ServingEngine engine(&ladder, config, &clock);

  // Each of these picks the stuck rung, times out on it (fake time jumps
  // 10 ms), and has no budget left for the floor: DeadlineExceeded, but the
  // call returns — the fake clock proves no wall-clock hang.
  for (int i = 0; i < 2; ++i) {
    const ServeResponse resp =
        engine.ScoreSync(docs.data(), kDocs, kStride, 500);
    EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  }
  const ServeCountersSnapshot counters = engine.counters().Snapshot();
  EXPECT_GE(counters.timeouts, 2u);
  EXPECT_EQ(engine.rung_state(0), CircuitState::kOpen);

  // With the stuck rung quarantined, the same budget is now served by the
  // floor within the deadline.
  const ServeResponse resp = engine.ScoreSync(docs.data(), kDocs, kStride, 500);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.rung, 1);
  EXPECT_TRUE(resp.degraded);
}

TEST(ServingEngineTest, HalfOpenProbeReclosesRecoveredRung) {
  const std::vector<float> docs = MakeDocs();
  FlakyScorer flaky(2, 3.0f);  // fails exactly twice, healthy after
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("flaky", &flaky, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("floor", &floor, 1.0).ok());
  ServingConfig config = OneWorkerConfig();
  config.max_attempts_per_rung = 1;  // no in-request retry: faults degrade
  config.circuit_failure_threshold = 2;
  config.circuit_open_micros = 1'000;
  FakeClock clock;
  ServingEngine engine(&ladder, config, &clock);

  // Two faulting requests trip the breaker; both still answer via the floor.
  for (int i = 0; i < 2; ++i) {
    const ServeResponse resp =
        engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.rung, 1);
    EXPECT_TRUE(resp.degraded);
  }
  EXPECT_EQ(engine.rung_state(0), CircuitState::kOpen);

  // While quarantined, requests do not touch the flaky rung at all.
  EXPECT_EQ(engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000).rung, 1);
  EXPECT_EQ(flaky.calls(), 2u);

  // After the open window a single probe is admitted; it succeeds and the
  // breaker re-closes, restoring full-strength serving.
  clock.AdvanceMicros(2'000);
  const ServeResponse probe =
      engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
  ASSERT_TRUE(probe.status.ok()) << probe.status.ToString();
  EXPECT_EQ(probe.rung, 0);
  EXPECT_EQ(engine.rung_state(0), CircuitState::kClosed);
  const ServeCountersSnapshot counters = engine.counters().Snapshot();
  EXPECT_GE(counters.circuit_opens, 1u);
  EXPECT_GE(counters.circuit_probes, 1u);
  EXPECT_GE(counters.circuit_closes, 1u);
}

// ---------------------------------------------------------------------------
// Latency percentile helper.

TEST(LatencyTest, PercentileNearestRank) {
  std::vector<double> samples{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(Percentile(samples, 50), 50.0);
  EXPECT_EQ(Percentile(samples, 95), 100.0);
  EXPECT_EQ(Percentile(samples, 100), 100.0);
  EXPECT_EQ(Percentile({}, 99), 0.0);
  EXPECT_EQ(Percentile({42.0}, 1), 42.0);
}

TEST(LatencyTest, PercentileZeroIsMinimum) {
  EXPECT_EQ(Percentile({30.0, 10.0, 20.0}, 0), 10.0);
  EXPECT_EQ(Percentile({}, 0), 0.0);
}

TEST(LatencyTest, PercentileSingleSampleEveryP) {
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(Percentile({7.5}, p), 7.5) << "p=" << p;
  }
}

TEST(LatencyTest, PercentileDuplicatesAndUnsortedInput) {
  const std::vector<double> samples{5.0, 1.0, 5.0, 5.0, 1.0};
  EXPECT_EQ(Percentile(samples, 0), 1.0);
  EXPECT_EQ(Percentile(samples, 40), 1.0);
  EXPECT_EQ(Percentile(samples, 41), 5.0);
  EXPECT_EQ(Percentile(samples, 100), 5.0);
}

// ---------------------------------------------------------------------------
// Bounded latency histograms: the engine's replacement for the unbounded
// per-rung sample store. Histograms live in the global metrics registry
// (shared by every engine whose ladder uses the same rung names), so all
// assertions are on deltas.

TEST(ServingEngineTest, BoundedHistogramsRecordServedRequests) {
  const std::vector<float> docs = MakeDocs();
  FakeClock clock;
  ConstantScorer strong_inner(2.0f);
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter strong(&strong_inner);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("histo-strong", &strong, 10.0).ok());
  ASSERT_TRUE(ladder.AddRung("histo-floor", &floor, 1.0).ok());
  ServingEngine engine(&ladder, OneWorkerConfig(), &clock);

  const uint64_t strong_before = engine.rung_latency(0).Count();
  const uint64_t floor_before = engine.rung_latency(1).Count();
  const uint64_t queue_before = engine.queue_wait().Count();
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    const ServeResponse resp =
        engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.rung, 0);
  }

  EXPECT_EQ(engine.rung_latency(0).Count(), strong_before + kRequests);
  EXPECT_EQ(engine.rung_latency(1).Count(), floor_before);
  // Every processed request records its queue wait, served or not.
  EXPECT_EQ(engine.queue_wait().Count(), queue_before + kRequests);
}

TEST(ServingEngineTest, RetryBackoffIsRecorded) {
  const std::vector<float> docs = MakeDocs();
  FlakyScorer flaky(1, 3.0f);  // first call fails, second succeeds
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("backoff-flaky", &flaky, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("backoff-floor", &floor, 1.0).ok());
  FakeClock clock;
  ServingEngine engine(&ladder, OneWorkerConfig(), &clock);

  const uint64_t sleeps_before = engine.retry_backoff().Count();
  const ServeResponse resp =
      engine.ScoreSync(docs.data(), kDocs, kStride, 1'000'000);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_GE(resp.retries, 1u);
  EXPECT_EQ(engine.retry_backoff().Count(), sleeps_before + resp.retries);
  EXPECT_GT(engine.retry_backoff().MaxMicros(), 0.0);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: sustained load with a faulty top rung, on the
// real clock and a real worker pool. With 20% transient faults and 10%
// latency spikes on the strongest rung, every request is answered within
// its (generous) deadline, lower rungs absorb the damage, and no non-finite
// score ever reaches a response.

TEST(ServingEngineIntegrationTest, FaultyTopRungNeverMissesDeadlines) {
  const std::vector<float> docs = MakeDocs();
  ConstantScorer strong_inner(3.0f);
  FaultInjectionConfig fic;
  fic.transient_fault_probability = 0.2;
  fic.latency_spike_probability = 0.1;
  fic.spike_micros = 2'000;
  fic.non_finite_probability = 0.05;
  fic.seed = 42;
  FaultInjectingScorer faulty(&strong_inner, fic);  // real clock: real spikes
  ConstantScorer mid_inner(2.0f);
  InfallibleScorerAdapter mid(&mid_inner);
  ConstantScorer floor_inner(1.0f);
  InfallibleScorerAdapter floor(&floor_inner);
  DegradationLadder ladder;
  ASSERT_TRUE(ladder.AddRung("faulty-strong", &faulty, 4.0).ok());
  ASSERT_TRUE(ladder.AddRung("mid", &mid, 2.0).ok());
  ASSERT_TRUE(ladder.AddRung("floor", &floor, 1.0).ok());

  ServingConfig config;
  config.num_workers = 4;
  config.queue_capacity = 256;
  config.circuit_open_micros = 5'000;
  ServingEngine engine(&ladder, config);

  // Deadlines are generous relative to the stub scorers and the 2 ms spikes
  // so the test stays robust under sanitizer slowdowns; the injected faults,
  // not machine speed, are what force degradation.
  constexpr uint64_t kBudgetMicros = 250'000;
  constexpr int kRequests = 200;
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ServeRequest request;
    request.docs = docs.data();
    request.count = kDocs;
    request.stride = kStride;
    request.deadline = Deadline::AfterMicros(engine.clock(), kBudgetMicros);
    futures.push_back(engine.Submit(request));
  }

  int answered = 0;
  for (auto& future : futures) {
    const ServeResponse resp = future.get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_LE(resp.total_micros, kBudgetMicros);
    ASSERT_EQ(resp.scores.size(), kDocs);
    for (const float s : resp.scores) ASSERT_TRUE(std::isfinite(s));
    ++answered;
  }
  EXPECT_EQ(answered, kRequests);

  const ServeCountersSnapshot counters = engine.counters().Snapshot();
  EXPECT_EQ(counters.ok, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.deadline_exceeded, 0u);
  // The injected faults must actually have fired and pushed some requests
  // down the ladder.
  EXPECT_GT(faulty.transient_faults_injected() + faulty.batches_poisoned(),
            0u);
  uint64_t served_below_top = 0;
  for (size_t i = 1; i < ladder.num_rungs(); ++i) {
    served_below_top += counters.served_by_rung[i];
  }
  EXPECT_GT(served_below_top, 0u);
}

}  // namespace
}  // namespace dnlr::serve
