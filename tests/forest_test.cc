#include <gtest/gtest.h>

#include <vector>

#include "data/synthetic.h"
#include "forest/quickscorer.h"
#include "forest/scorer.h"
#include "forest/vectorized_quickscorer.h"
#include "gbdt/booster.h"

namespace dnlr::forest {
namespace {

using data::Dataset;
using data::SyntheticConfig;

/// Shared fixture: a trained LambdaMART forest over a small synthetic
/// dataset, reused by every traversal-equivalence test.
class ForestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig config;
    config.num_queries = 60;
    config.min_docs_per_query = 15;
    config.max_docs_per_query = 30;
    config.num_features = 20;
    config.seed = 31;
    dataset_ = new Dataset(data::GenerateSynthetic(config));

    gbdt::BoosterConfig booster_config;
    booster_config.num_trees = 30;
    booster_config.num_leaves = 16;
    booster_config.learning_rate = 0.2;
    gbdt::Booster booster(booster_config);
    ensemble_ = new gbdt::Ensemble(booster.TrainLambdaMart(*dataset_, nullptr));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete ensemble_;
    dataset_ = nullptr;
    ensemble_ = nullptr;
  }

  static Dataset* dataset_;
  static gbdt::Ensemble* ensemble_;
};

Dataset* ForestFixture::dataset_ = nullptr;
gbdt::Ensemble* ForestFixture::ensemble_ = nullptr;

TEST_F(ForestFixture, QuickScorerMatchesNaiveExactly) {
  QuickScorer qs(*ensemble_, dataset_->num_features());
  NaiveTraversalScorer naive(*ensemble_);
  const auto fast = qs.ScoreDataset(*dataset_);
  const auto slow = naive.ScoreDataset(*dataset_);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t d = 0; d < fast.size(); ++d) {
    EXPECT_FLOAT_EQ(fast[d], slow[d]) << "doc " << d;
  }
}

TEST_F(ForestFixture, SingleDocumentApi) {
  QuickScorer qs(*ensemble_, dataset_->num_features());
  for (uint32_t d = 0; d < 20; ++d) {
    EXPECT_NEAR(qs.ScoreDocument(dataset_->Row(d)),
                ensemble_->Score(dataset_->Row(d)), 1e-9);
  }
}

TEST_F(ForestFixture, BlockwiseMatchesNaive) {
  // Tiny block budget to force several blocks.
  BlockwiseQuickScorer bwqs(*ensemble_, dataset_->num_features(), 2048);
  EXPECT_GT(bwqs.num_blocks(), 1u);
  NaiveTraversalScorer naive(*ensemble_);
  const auto fast = bwqs.ScoreDataset(*dataset_);
  const auto slow = naive.ScoreDataset(*dataset_);
  for (size_t d = 0; d < fast.size(); ++d) {
    EXPECT_NEAR(fast[d], slow[d], 1e-4f) << "doc " << d;
  }
}

TEST_F(ForestFixture, VectorizedMatchesNaive) {
  VectorizedQuickScorer vqs(*ensemble_, dataset_->num_features());
  NaiveTraversalScorer naive(*ensemble_);
  const auto fast = vqs.ScoreDataset(*dataset_);
  const auto slow = naive.ScoreDataset(*dataset_);
  for (size_t d = 0; d < fast.size(); ++d) {
    EXPECT_FLOAT_EQ(fast[d], slow[d]) << "doc " << d;
  }
}

TEST_F(ForestFixture, VectorizedHandlesNonMultipleOf8Batches) {
  VectorizedQuickScorer vqs(*ensemble_, dataset_->num_features());
  NaiveTraversalScorer naive(*ensemble_);
  for (const uint32_t count : {1u, 3u, 7u, 9u, 15u}) {
    std::vector<float> fast(count);
    std::vector<float> slow(count);
    vqs.Score(dataset_->features().data(), count, dataset_->num_features(),
              fast.data());
    naive.Score(dataset_->features().data(), count, dataset_->num_features(),
                slow.data());
    for (uint32_t d = 0; d < count; ++d) {
      EXPECT_FLOAT_EQ(fast[d], slow[d]) << "count " << count << " doc " << d;
    }
  }
}

TEST_F(ForestFixture, QuickScorerEvaluatesFewerNodesThanClassic) {
  QuickScorer qs(*ensemble_, dataset_->num_features());
  uint64_t quickscorer_comparisons = 0;
  uint64_t naive_visits = 0;
  const uint32_t sample = std::min(200u, dataset_->num_docs());
  for (uint32_t d = 0; d < sample; ++d) {
    quickscorer_comparisons += qs.CountComparisons(dataset_->Row(d));
    for (const auto& tree : ensemble_->trees()) {
      naive_visits += tree.CountVisitedNodes(dataset_->Row(d));
    }
  }
  // The paper reports ~30 % visited for QS vs ~80 % for classic traversal;
  // at minimum QS must not evaluate more conditions than the total.
  EXPECT_LT(quickscorer_comparisons,
            static_cast<uint64_t>(sample) * qs.TotalConditions());
  EXPECT_GT(quickscorer_comparisons, 0u);
  EXPECT_GT(naive_visits, 0u);
}

TEST(QuickScorerEdgeTest, SingleLeafTreesScoreBase) {
  gbdt::Ensemble ensemble(1.5);
  ensemble.AddTree(gbdt::RegressionTree({}, {2.5}));
  QuickScorer qs(ensemble, 4);
  const float row[4] = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(qs.ScoreDocument(row), 4.0);
}

TEST(QuickScorerEdgeTest, SixtyFourLeafTreeSupported) {
  // A degenerate right-spine tree with 64 leaves on one feature.
  std::vector<gbdt::TreeNode> nodes(63);
  std::vector<double> values(64);
  for (uint32_t i = 0; i < 63; ++i) {
    nodes[i].feature = 0;
    nodes[i].threshold = static_cast<float>(i);
    nodes[i].left = gbdt::TreeNode::EncodeLeaf(i);
    nodes[i].right =
        i + 1 < 63 ? static_cast<int32_t>(i + 1) : gbdt::TreeNode::EncodeLeaf(63);
    values[i] = i;
  }
  values[63] = 63;
  gbdt::Ensemble ensemble(0.0);
  ensemble.AddTree(gbdt::RegressionTree(std::move(nodes), std::move(values)));
  QuickScorer qs(ensemble, 1);
  for (const float x : {-1.0f, 0.0f, 10.5f, 62.0f, 99.0f}) {
    const float row[1] = {x};
    EXPECT_DOUBLE_EQ(qs.ScoreDocument(row), ensemble.Score(row)) << x;
  }
}

TEST(QuickScorerEdgeTest, TieOnThresholdGoesLeft) {
  std::vector<gbdt::TreeNode> nodes(1);
  nodes[0] = {0, 5.0f, gbdt::TreeNode::EncodeLeaf(0),
              gbdt::TreeNode::EncodeLeaf(1)};
  gbdt::Ensemble ensemble(0.0);
  ensemble.AddTree(gbdt::RegressionTree(std::move(nodes), {-1.0, 1.0}));
  QuickScorer qs(ensemble, 1);
  const float tie[1] = {5.0f};
  const float above[1] = {5.0001f};
  EXPECT_DOUBLE_EQ(qs.ScoreDocument(tie), -1.0);
  EXPECT_DOUBLE_EQ(qs.ScoreDocument(above), 1.0);
}

TEST(QuickScorerEdgeTest, EmptyBatchIsNoOp) {
  gbdt::Ensemble ensemble(0.0);
  ensemble.AddTree(gbdt::RegressionTree({}, {1.0}));
  QuickScorer qs(ensemble, 1);
  qs.Score(nullptr, 0, 1, nullptr);  // must not crash
}

}  // namespace
}  // namespace dnlr::forest
