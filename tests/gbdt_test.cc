#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "data/synthetic.h"
#include "gbdt/binning.h"
#include "gbdt/booster.h"
#include "gbdt/ensemble.h"
#include "gbdt/objective.h"
#include "gbdt/tree.h"
#include "metrics/metrics.h"

namespace dnlr::gbdt {
namespace {

using data::Dataset;
using data::GenerateSynthetic;
using data::SyntheticConfig;

RegressionTree HandBuiltTree() {
  // Structure:
  //        n0 (f0 <= 1.0)
  //       /              |
  //   leaf(10)        n1 (f1 <= 2.0)
  //                   /            |
  //               leaf(20)      leaf(30)
  std::vector<TreeNode> nodes(2);
  nodes[0] = {0, 1.0f, TreeNode::EncodeLeaf(0), 1};
  nodes[1] = {1, 2.0f, TreeNode::EncodeLeaf(1), TreeNode::EncodeLeaf(2)};
  return RegressionTree(std::move(nodes), {10.0, 20.0, 30.0});
}

TEST(TreeTest, ScoreFollowsDecisions) {
  RegressionTree tree = HandBuiltTree();
  const float left[2] = {0.5f, 0.0f};
  const float mid[2] = {2.0f, 1.5f};
  const float right[2] = {2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(tree.Score(left), 10.0);
  EXPECT_DOUBLE_EQ(tree.Score(mid), 20.0);
  EXPECT_DOUBLE_EQ(tree.Score(right), 30.0);
}

TEST(TreeTest, TieGoesLeft) {
  RegressionTree tree = HandBuiltTree();
  const float tie[2] = {1.0f, 0.0f};  // x == threshold -> left
  EXPECT_DOUBLE_EQ(tree.Score(tie), 10.0);
}

TEST(TreeTest, ExitLeafMatchesScore) {
  RegressionTree tree = HandBuiltTree();
  const float mid[2] = {2.0f, 1.5f};
  EXPECT_EQ(tree.ExitLeaf(mid), 1u);
}

TEST(TreeTest, DepthAndCounts) {
  RegressionTree tree = HandBuiltTree();
  EXPECT_EQ(tree.num_nodes(), 2u);
  EXPECT_EQ(tree.num_leaves(), 3u);
  EXPECT_EQ(tree.Depth(), 2u);
}

TEST(TreeTest, CountVisitedNodes) {
  RegressionTree tree = HandBuiltTree();
  const float left[2] = {0.5f, 0.0f};
  const float right[2] = {2.0f, 3.0f};
  EXPECT_EQ(tree.CountVisitedNodes(left), 1u);
  EXPECT_EQ(tree.CountVisitedNodes(right), 2u);
}

TEST(TreeTest, NormalizeLeafOrderPreservesSemantics) {
  // Build a tree whose leaves are numbered out of order, then normalize.
  std::vector<TreeNode> nodes(2);
  nodes[0] = {0, 1.0f, TreeNode::EncodeLeaf(2), 1};
  nodes[1] = {1, 2.0f, TreeNode::EncodeLeaf(0), TreeNode::EncodeLeaf(1)};
  RegressionTree tree(std::move(nodes), {20.0, 30.0, 10.0});
  const float left[2] = {0.5f, 0.0f};
  const float mid[2] = {2.0f, 1.5f};
  const double before_left = tree.Score(left);
  const double before_mid = tree.Score(mid);
  tree.NormalizeLeafOrder();
  EXPECT_DOUBLE_EQ(tree.Score(left), before_left);
  EXPECT_DOUBLE_EQ(tree.Score(mid), before_mid);
  // Leaf 0 is now the leftmost leaf.
  EXPECT_EQ(tree.ExitLeaf(left), 0u);
}

TEST(BinningTest, DistinctValuesGetMidpointBoundaries) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  for (const float v : {1.0f, 2.0f, 4.0f}) {
    dataset.AddDocument(std::vector<float>{v}, 0.0f);
  }
  FeatureBinner binner(dataset, 16);
  EXPECT_EQ(binner.NumBins(0), 3u);
  EXPECT_FLOAT_EQ(binner.UpperBound(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(binner.UpperBound(0, 1), 3.0f);
  EXPECT_EQ(binner.BinOf(0, 1.0f), 0);
  EXPECT_EQ(binner.BinOf(0, 1.5f), 0);  // boundary value goes left
  EXPECT_EQ(binner.BinOf(0, 2.0f), 1);
  EXPECT_EQ(binner.BinOf(0, 100.0f), 2);
}

TEST(BinningTest, ConstantFeatureSingleBin) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{3.0f}, 0.0f);
  dataset.AddDocument(std::vector<float>{3.0f}, 1.0f);
  FeatureBinner binner(dataset, 16);
  EXPECT_EQ(binner.NumBins(0), 1u);
  EXPECT_EQ(binner.BinOf(0, -100.0f), 0);
  EXPECT_EQ(binner.BinOf(0, 100.0f), 0);
}

TEST(BinningTest, ManyValuesCappedAtMaxBins) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  for (int i = 0; i < 1000; ++i) {
    dataset.AddDocument(std::vector<float>{static_cast<float>(i)}, 0.0f);
  }
  FeatureBinner binner(dataset, 32);
  EXPECT_LE(binner.NumBins(0), 32u);
  EXPECT_GE(binner.NumBins(0), 30u);
}

TEST(BinningTest, BinDatasetColumnMajorLayout) {
  Dataset dataset(2);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{1.0f, 10.0f}, 0.0f);
  dataset.AddDocument(std::vector<float>{2.0f, 20.0f}, 0.0f);
  FeatureBinner binner(dataset, 8);
  const auto bins = binner.BinDataset(dataset);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0], binner.BinOf(0, 1.0f));
  EXPECT_EQ(bins[1], binner.BinOf(0, 2.0f));
  EXPECT_EQ(bins[2], binner.BinOf(1, 10.0f));
  EXPECT_EQ(bins[3], binner.BinOf(1, 20.0f));
}

TEST(BinningTest, MonotonicBinAssignment) {
  SyntheticConfig config;
  config.num_queries = 20;
  config.num_features = 5;
  Dataset dataset = GenerateSynthetic(config);
  FeatureBinner binner(dataset, 64);
  for (uint32_t f = 0; f < 5; ++f) {
    // Bin index must be monotone in the raw value.
    float prev_value = -1e30f;
    for (float v = -10.0f; v < 10.0f; v += 0.37f) {
      EXPECT_GE(binner.BinOf(f, v), binner.BinOf(f, prev_value));
      prev_value = v;
    }
  }
}

TEST(ObjectiveTest, RegressionGradients) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{0.0f}, 2.0f);
  dataset.AddDocument(std::vector<float>{0.0f}, 0.0f);
  RegressionObjective objective;
  std::vector<double> scores{1.0, 1.0};
  std::vector<double> grads(2);
  std::vector<double> hess(2);
  objective.ComputeGradients(dataset, scores, grads, hess);
  EXPECT_DOUBLE_EQ(grads[0], -1.0);  // score below target
  EXPECT_DOUBLE_EQ(grads[1], 1.0);   // score above target
  EXPECT_DOUBLE_EQ(hess[0], 1.0);
  EXPECT_DOUBLE_EQ(objective.InitScore(dataset), 1.0);
}

TEST(ObjectiveTest, RegressionCustomTargets) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{0.0f}, 0.0f);
  RegressionObjective objective(std::vector<float>{5.0f});
  std::vector<double> scores{0.0};
  std::vector<double> grads(1);
  std::vector<double> hess(1);
  objective.ComputeGradients(dataset, scores, grads, hess);
  EXPECT_DOUBLE_EQ(grads[0], -5.0);
  EXPECT_DOUBLE_EQ(objective.InitScore(dataset), 5.0);
}

TEST(ObjectiveTest, LambdaRankPushesRelevantUp) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{0.0f}, 3.0f);  // relevant
  dataset.AddDocument(std::vector<float>{0.0f}, 0.0f);  // irrelevant
  LambdaRankObjective objective;
  // Model currently ranks the irrelevant one higher.
  std::vector<double> scores{0.0, 1.0};
  std::vector<double> grads(2);
  std::vector<double> hess(2);
  objective.ComputeGradients(dataset, scores, grads, hess);
  EXPECT_LT(grads[0], 0.0);  // negative gradient -> score should grow
  EXPECT_GT(grads[1], 0.0);
  EXPECT_GT(hess[0], 0.0);
  EXPECT_GT(hess[1], 0.0);
  // Gradients are equal and opposite for a single pair.
  EXPECT_NEAR(grads[0], -grads[1], 1e-12);
}

TEST(ObjectiveTest, LambdaRankZeroForUniformLabels) {
  Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{0.0f}, 1.0f);
  dataset.AddDocument(std::vector<float>{0.0f}, 1.0f);
  LambdaRankObjective objective;
  std::vector<double> scores{0.4, 0.6};
  std::vector<double> grads(2);
  std::vector<double> hess(2);
  objective.ComputeGradients(dataset, scores, grads, hess);
  EXPECT_DOUBLE_EQ(grads[0], 0.0);
  EXPECT_DOUBLE_EQ(grads[1], 0.0);
}

TEST(EnsembleTest, ScoreSumsTreesAndBase) {
  Ensemble ensemble(0.5);
  ensemble.AddTree(HandBuiltTree());
  ensemble.AddTree(HandBuiltTree());
  const float left[2] = {0.5f, 0.0f};
  EXPECT_DOUBLE_EQ(ensemble.Score(left), 20.5);
  EXPECT_EQ(ensemble.MaxLeaves(), 3u);
  EXPECT_EQ(ensemble.TotalNodes(), 4u);
}

TEST(EnsembleTest, TruncateKeepsPrefix) {
  Ensemble ensemble(0.0);
  ensemble.AddTree(HandBuiltTree());
  ensemble.AddTree(HandBuiltTree());
  ensemble.Truncate(1);
  EXPECT_EQ(ensemble.num_trees(), 1u);
  const float left[2] = {0.5f, 0.0f};
  EXPECT_DOUBLE_EQ(ensemble.Score(left), 10.0);
}

TEST(EnsembleTest, SplitPointsPerFeature) {
  Ensemble ensemble(0.0);
  ensemble.AddTree(HandBuiltTree());
  ensemble.AddTree(HandBuiltTree());  // duplicate thresholds deduplicated
  const auto points = ensemble.SplitPointsPerFeature(3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0], std::vector<float>{1.0f});
  EXPECT_EQ(points[1], std::vector<float>{2.0f});
  EXPECT_TRUE(points[2].empty());
}

TEST(EnsembleTest, SerializeRoundTrip) {
  Ensemble ensemble(0.25);
  ensemble.AddTree(HandBuiltTree());
  auto parsed = Ensemble::Deserialize(*ensemble.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_trees(), 1u);
  EXPECT_DOUBLE_EQ(parsed->base_score(), 0.25);
  const float mid[2] = {2.0f, 1.5f};
  EXPECT_DOUBLE_EQ(parsed->Score(mid), ensemble.Score(mid));
}

TEST(EnsembleTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Ensemble::Deserialize("not a model").ok());
  EXPECT_FALSE(Ensemble::Deserialize("ensemble 1 0\ntree 1 2\nnode x").ok());
}

TEST(EnsembleTest, FileRoundTrip) {
  Ensemble ensemble(0.0);
  ensemble.AddTree(HandBuiltTree());
  const std::string path = ::testing::TempDir() + "/ensemble.txt";
  ASSERT_TRUE(ensemble.SaveToFile(path).ok());
  auto loaded = Ensemble::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_trees(), 1u);
}

class BoosterTrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig config;
    config.num_queries = 120;
    config.min_docs_per_query = 20;
    config.max_docs_per_query = 40;
    config.num_features = 25;
    config.seed = 77;
    splits_ = new data::DatasetSplits(data::GenerateSyntheticSplits(config));
  }
  static void TearDownTestSuite() {
    delete splits_;
    splits_ = nullptr;
  }
  static data::DatasetSplits* splits_;
};

data::DatasetSplits* BoosterTrainingTest::splits_ = nullptr;

TEST_F(BoosterTrainingTest, LambdaMartBeatsRandomByLargeMargin) {
  BoosterConfig config;
  config.num_trees = 60;
  config.num_leaves = 16;
  config.learning_rate = 0.15;
  Booster booster(config);
  Ensemble model = booster.TrainLambdaMart(splits_->train, &splits_->valid);
  const auto scores = model.ScoreDataset(splits_->test);
  const double ndcg = metrics::MeanNdcg(splits_->test, scores, 10);
  // Random scoring sits near the all-ties baseline; a trained model must be
  // far above it.
  std::vector<float> zeros(splits_->test.num_docs(), 0.0f);
  const double baseline = metrics::MeanNdcg(splits_->test, zeros, 10);
  EXPECT_GT(ndcg, baseline + 0.1)
      << "trained " << ndcg << " vs baseline " << baseline;
}

TEST_F(BoosterTrainingTest, MoreTreesDoNotHurtTraining) {
  BoosterConfig config;
  config.num_trees = 10;
  config.num_leaves = 16;
  Booster small(config);
  config.num_trees = 40;
  Booster large(config);
  Ensemble small_model = small.TrainLambdaMart(splits_->train, nullptr);
  Ensemble large_model = large.TrainLambdaMart(splits_->train, nullptr);
  const double small_ndcg = metrics::MeanNdcg(
      splits_->train, small_model.ScoreDataset(splits_->train), 10);
  const double large_ndcg = metrics::MeanNdcg(
      splits_->train, large_model.ScoreDataset(splits_->train), 10);
  EXPECT_GE(large_ndcg, small_ndcg - 1e-6);
}

TEST_F(BoosterTrainingTest, RespectsLeafBudget) {
  BoosterConfig config;
  config.num_trees = 5;
  config.num_leaves = 8;
  Booster booster(config);
  Ensemble model = booster.TrainLambdaMart(splits_->train, nullptr);
  EXPECT_EQ(model.num_trees(), 5u);
  for (uint32_t t = 0; t < model.num_trees(); ++t) {
    EXPECT_LE(model.tree(t).num_leaves(), 8u);
    EXPECT_GE(model.tree(t).num_leaves(), 2u);
  }
}

TEST_F(BoosterTrainingTest, EarlyStoppingTruncates) {
  BoosterConfig config;
  config.num_trees = 200;
  config.num_leaves = 8;
  config.learning_rate = 0.3;
  config.early_stopping_rounds = 2;
  config.eval_period = 10;
  Booster booster(config);
  Ensemble model = booster.TrainLambdaMart(splits_->train, &splits_->valid);
  // With aggressive learning rate on a small dataset, validation NDCG
  // plateaus well before 200 trees.
  EXPECT_LT(model.num_trees(), 200u);
  EXPECT_GT(model.num_trees(), 0u);
}

TEST_F(BoosterTrainingTest, RegressionObjectiveLearnsLabels) {
  BoosterConfig config;
  config.num_trees = 40;
  config.num_leaves = 16;
  config.learning_rate = 0.2;
  Booster booster(config);
  Ensemble model = booster.TrainRegression(splits_->train, nullptr);
  const auto scores = model.ScoreDataset(splits_->train);
  double mse = 0.0;
  double var = 0.0;
  double mean = 0.0;
  for (uint32_t d = 0; d < splits_->train.num_docs(); ++d) {
    mean += splits_->train.Label(d);
  }
  mean /= splits_->train.num_docs();
  for (uint32_t d = 0; d < splits_->train.num_docs(); ++d) {
    const double err = scores[d] - splits_->train.Label(d);
    mse += err * err;
    const double dev = splits_->train.Label(d) - mean;
    var += dev * dev;
  }
  EXPECT_LT(mse, 0.7 * var) << "regression failed to explain variance";
}

TEST_F(BoosterTrainingTest, LeavesOrderedForQuickScorer) {
  BoosterConfig config;
  config.num_trees = 3;
  config.num_leaves = 16;
  Booster booster(config);
  Ensemble model = booster.TrainLambdaMart(splits_->train, nullptr);
  // In-order traversal of each tree must visit leaves 0, 1, 2, ...
  for (uint32_t t = 0; t < model.num_trees(); ++t) {
    const RegressionTree& tree = model.tree(t);
    uint32_t expected = 0;
    std::function<void(int32_t)> visit = [&](int32_t child) {
      if (TreeNode::IsLeaf(child)) {
        EXPECT_EQ(TreeNode::DecodeLeaf(child), expected++);
        return;
      }
      visit(tree.node(child).left);
      visit(tree.node(child).right);
    };
    if (tree.num_nodes() > 0) visit(0);
    EXPECT_EQ(expected, tree.num_leaves());
  }
}

}  // namespace
}  // namespace dnlr::gbdt
