// Tests for the traffic-replay workload layer: the ZipfSampler's boundary
// contract (the n == 0 underflow and the u ∈ [0, 1) domain promoted out of
// the CLI) and its distribution via a chi-square goodness-of-fit against the
// analytic pmf; the WorkloadGenerator's determinism, arrival-stream
// invariants, size mix, diurnal curve and burst episodes; SleepUntilDue
// pacing under a FakeClock; and the streaming LETOR ingester's equivalence
// with the batch reader, Rewind support and error paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/letor_io.h"
#include "data/letor_stream.h"
#include "data/synthetic.h"
#include "replay/workload.h"
#include "replay/zipf.h"

namespace dnlr {
namespace {

using replay::Arrival;
using replay::SizeClass;
using replay::WorkloadConfig;
using replay::WorkloadGenerator;
using replay::ZipfSampler;

// ---------------------------------------------------------------- ZipfSampler

TEST(ZipfSamplerTest, SingleRankAlwaysReturnsZero) {
  // The n == 0 regression's nearest valid neighbour: a one-entry table must
  // map the whole uniform domain to rank 0.
  const ZipfSampler zipf(1, 1.1);
  EXPECT_EQ(zipf.size(), 1u);
  EXPECT_EQ(zipf.SampleFromUniform(0.0), 0u);
  EXPECT_EQ(zipf.SampleFromUniform(0.5), 0u);
  EXPECT_EQ(zipf.SampleFromUniform(std::nextafter(1.0, 0.0)), 0u);
}

TEST(ZipfSamplerTest, UniformBoundaryContract) {
  const ZipfSampler zipf(16, 1.1);
  // u == 0 is the most popular rank.
  EXPECT_EQ(zipf.SampleFromUniform(0.0), 0u);
  // The largest double below 1 must still land on a valid rank (the last
  // cdf entry is exactly 1.0, so lower_bound cannot fall off the end).
  EXPECT_EQ(zipf.SampleFromUniform(std::nextafter(1.0, 0.0)), 15u);
  // Every draw from a real Rng stays in range.
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.Sample(rng), 16u);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  const ZipfSampler zipf(64, 1.3);
  double total = 0.0;
  for (uint32_t i = 0; i < zipf.size(); ++i) {
    total += zipf.Pmf(i);
    if (i > 0) EXPECT_LT(zipf.Pmf(i), zipf.Pmf(i - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, ChiSquareGoodnessOfFit) {
  // 200k draws over 32 ranks against the analytic pmf. The statistic is a
  // fixed number under the fixed seed; the bound is the 99.9th percentile
  // of chi-square with 31 degrees of freedom (~61.1) plus slack, so the
  // test fails only if the sampler's distribution is actually wrong.
  constexpr uint32_t kRanks = 32;
  constexpr int kDraws = 200'000;
  const ZipfSampler zipf(kRanks, 1.1);
  Rng rng(7);
  std::vector<uint64_t> observed(kRanks, 0);
  for (int i = 0; i < kDraws; ++i) ++observed[zipf.Sample(rng)];

  double chi_square = 0.0;
  for (uint32_t i = 0; i < kRanks; ++i) {
    const double expected = static_cast<double>(kDraws) * zipf.Pmf(i);
    ASSERT_GE(expected, 5.0);  // chi-square validity condition
    const double delta = static_cast<double>(observed[i]) - expected;
    chi_square += delta * delta / expected;
  }
  EXPECT_LT(chi_square, 70.0) << "chi-square = " << chi_square;
}

// ---------------------------------------------------------- WorkloadGenerator

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.num_queries = 40;
  config.base_qps = 1000.0;
  config.seed = 11;
  return config;
}

TEST(WorkloadGeneratorTest, DeterministicForSameConfig) {
  WorkloadGenerator a(SmallConfig());
  WorkloadGenerator b(SmallConfig());
  for (int i = 0; i < 2000; ++i) {
    const Arrival x = a.Next();
    const Arrival y = b.Next();
    EXPECT_EQ(x.query, y.query);
    EXPECT_EQ(x.candidate_docs, y.candidate_docs);
    EXPECT_EQ(x.due_micros, y.due_micros);
    EXPECT_EQ(x.in_burst, y.in_burst);
  }
}

TEST(WorkloadGeneratorTest, SeedChangesTheStream) {
  WorkloadConfig other = SmallConfig();
  other.seed = 12;
  WorkloadGenerator a(SmallConfig());
  WorkloadGenerator b(other);
  bool any_difference = false;
  for (int i = 0; i < 2000 && !any_difference; ++i) {
    const Arrival x = a.Next();
    const Arrival y = b.Next();
    any_difference = x.query != y.query || x.due_micros != y.due_micros;
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadGeneratorTest, ArrivalStreamInvariants) {
  WorkloadGenerator gen(SmallConfig());
  const std::set<uint32_t> default_mix_sizes = {10, 128, 1024};
  uint64_t previous_due = 0;
  bool first = true;
  for (int i = 0; i < 5000; ++i) {
    const Arrival arrival = gen.Next();
    EXPECT_LT(arrival.query, 40u);
    EXPECT_TRUE(default_mix_sizes.count(arrival.candidate_docs) > 0)
        << arrival.candidate_docs;
    if (!first) EXPECT_GT(arrival.due_micros, previous_due);
    previous_due = arrival.due_micros;
    first = false;
  }
}

TEST(WorkloadGeneratorTest, MixWeightsAreRoughlyRespected) {
  WorkloadConfig config = SmallConfig();
  config.mix = {{8, 0.25}, {64, 0.75}};
  WorkloadGenerator gen(config);
  int small = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next().candidate_docs == 8) ++small;
  }
  const double small_share = static_cast<double>(small) / kDraws;
  EXPECT_NEAR(small_share, 0.25, 0.02);
}

TEST(WorkloadGeneratorTest, DiurnalMultiplier) {
  WorkloadConfig config = SmallConfig();
  config.diurnal_amplitude = 0.5;
  config.diurnal_period_micros = 1'000'000;
  config.burst_probability = 0.0;
  const WorkloadGenerator gen(config);
  EXPECT_NEAR(gen.RateMultiplierAt(0), 1.0, 1e-9);
  EXPECT_NEAR(gen.RateMultiplierAt(250'000), 1.5, 1e-9);   // peak
  EXPECT_NEAR(gen.RateMultiplierAt(750'000), 0.5, 1e-9);   // trough
}

TEST(WorkloadGeneratorTest, BurstEpisodes) {
  WorkloadConfig config = SmallConfig();
  config.burst_probability = 0.01;
  config.burst_duration_micros = 50'000;
  WorkloadGenerator with_bursts(config);
  uint64_t in_burst = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (with_bursts.Next().in_burst) ++in_burst;
  }
  EXPECT_GE(with_bursts.bursts_started(), 1u);
  EXPECT_GE(in_burst, 1u);

  config.burst_probability = 0.0;
  WorkloadGenerator without(config);
  for (int i = 0; i < 20'000; ++i) EXPECT_FALSE(without.Next().in_burst);
  EXPECT_EQ(without.bursts_started(), 0u);
}

TEST(WorkloadGeneratorTest, SleepUntilDuePacesOnTheClock) {
  FakeClock clock(500);
  Arrival arrival;
  arrival.due_micros = 1000;
  // Not yet due: the fake clock "sleeps" forward to exactly the due time.
  replay::SleepUntilDue(clock, 500, arrival);
  EXPECT_EQ(clock.NowMicros(), 1500u);
  // Already due: no time passes.
  replay::SleepUntilDue(clock, 500, arrival);
  EXPECT_EQ(clock.NowMicros(), 1500u);
}

// ----------------------------------------------------------- LetorQueryStream

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(LetorQueryStreamTest, MatchesBatchReader) {
  data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = 12;
  config.num_features = 16;
  config.seed = 9;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  const std::string path = TempPath("replay_test_stream.letor");
  ASSERT_TRUE(data::WriteLetorFile(dataset, path).ok());

  auto batch_read = data::ReadLetorFile(path, config.num_features);
  ASSERT_TRUE(batch_read.ok()) << batch_read.status().ToString();
  const data::Dataset& batch = *batch_read;

  auto opened = data::LetorQueryStream::Open(path, config.num_features);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  data::LetorQueryStream stream = std::move(opened).value();

  data::QueryBatch query;
  for (uint32_t q = 0; q < batch.num_queries(); ++q) {
    auto more = stream.Next(&query);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(more.value()) << "stream ended early at query " << q;
    EXPECT_EQ(query.qid, batch.QueryId(q));
    ASSERT_EQ(query.num_docs, batch.QuerySize(q));
    for (uint32_t d = 0; d < query.num_docs; ++d) {
      const uint32_t doc = batch.QueryBegin(q) + d;
      EXPECT_EQ(query.labels[d], batch.Label(doc));
      const float* row = batch.Row(doc);
      for (uint32_t f = 0; f < config.num_features; ++f) {
        EXPECT_EQ(query.features[static_cast<size_t>(d) *
                                     config.num_features +
                                 f],
                  row[f])
            << "query " << q << " doc " << d << " feature " << f;
      }
    }
  }
  auto at_end = stream.Next(&query);
  ASSERT_TRUE(at_end.ok());
  EXPECT_FALSE(at_end.value());
  EXPECT_EQ(stream.queries_read(), batch.num_queries());

  // Rewind replays the file from the top.
  ASSERT_TRUE(stream.Rewind().ok());
  auto again = stream.Next(&query);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.value());
  EXPECT_EQ(query.qid, batch.QueryId(0));
  EXPECT_EQ(query.num_docs, batch.QuerySize(0));

  std::filesystem::remove(path);
}

TEST(LetorQueryStreamTest, OpenRejectsBadInputs) {
  EXPECT_FALSE(data::LetorQueryStream::Open("/nonexistent/file.letor", 8)
                   .ok());
  const std::string path = TempPath("replay_test_zero_features.letor");
  { std::ofstream(path) << "1 qid:1 1:0.5\n"; }
  const auto zero = data::LetorQueryStream::Open(path, 0);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(LetorQueryStreamTest, FeatureIdBeyondWidthIsAParseError) {
  const std::string path = TempPath("replay_test_bad_fid.letor");
  { std::ofstream(path) << "1 qid:1 1:0.5 9:0.25\n"; }
  auto opened = data::LetorQueryStream::Open(path, 4);
  ASSERT_TRUE(opened.ok());
  data::LetorQueryStream stream = std::move(opened).value();
  data::QueryBatch query;
  EXPECT_FALSE(stream.Next(&query).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dnlr
