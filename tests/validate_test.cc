// Tests for the dnlr::validate invariant-checker layer: each test corrupts
// one model substrate (CSR matrix, tree ensemble, MLP, LETOR dataset) in a
// targeted way and asserts the matching validator pinpoints the violated
// invariant by name; the final test checks a valid end-to-end pipeline's
// artifacts pass every validator.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/validate.h"
#include "data/letor_io.h"
#include "data/synthetic.h"
#include "data/validate.h"
#include "forest/validate.h"
#include "gbdt/booster.h"
#include "gbdt/validate.h"
#include "mm/csr.h"
#include "mm/validate.h"
#include "nn/mlp.h"
#include "nn/validate.h"
#include "prune/magnitude.h"

namespace dnlr {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

validate::Checker RootChecker(validate::Report* report) {
  return validate::Checker(report, "root");
}

// ---------------------------------------------------------------------------
// Framework

TEST(ValidationReportTest, FreshReportIsOk) {
  validate::Report report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_EQ(report.ToString(), "validation OK");
}

TEST(ValidationReportTest, WarningsDoNotFail) {
  validate::Report report;
  RootChecker(&report).Warn("some.warning", "detail");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.num_warnings(), 1u);
  EXPECT_NE(report.ToString().find("some.warning"), std::string::npos);
}

TEST(ValidationReportTest, ErrorsFailAndNameTheInvariant) {
  validate::Report report;
  validate::Checker checker = RootChecker(&report).Nested("child[2]");
  checker.Check(false, "bad.invariant", "value 7");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasInvariant("bad.invariant"));
  const Status status = report.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("root.child[2]: bad.invariant"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// CSR

std::vector<uint32_t> Offsets(std::initializer_list<uint32_t> v) { return v; }

TEST(CsrValidatorTest, AcceptsMatrixFromDense) {
  mm::Matrix dense({{1.0f, 0.0f, 2.0f}, {0.0f, 0.0f, 0.0f}, {0.5f, 3.0f, 0.0f}});
  const Status status = mm::ValidateCsrMatrix(mm::CsrMatrix::FromDense(dense));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(CsrValidatorTest, DetectsNonMonotoneRowOffsets) {
  validate::Report report;
  const std::vector<uint32_t> cols = {0, 1, 0, 1};
  const std::vector<float> vals = {1.0f, 2.0f, 3.0f, 4.0f};
  mm::ValidateCsrArrays(3, 2, Offsets({0, 3, 2, 4}), cols, vals,
                        RootChecker(&report));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasInvariant("row_offsets.monotone"))
      << report.ToString();
}

TEST(CsrValidatorTest, DetectsWrongOffsetArrayLength) {
  validate::Report report;
  mm::ValidateCsrArrays(3, 2, Offsets({0, 1}), {{0}}, {{1.0f}},
                        RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("row_offsets.size")) << report.ToString();
}

TEST(CsrValidatorTest, DetectsOutOfRangeColumn) {
  validate::Report report;
  mm::ValidateCsrArrays(2, 3, Offsets({0, 1, 2}), {{0, 9}}, {{1.0f, 2.0f}},
                        RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("col_index.in_range")) << report.ToString();
}

TEST(CsrValidatorTest, DetectsUnsortedColumns) {
  validate::Report report;
  mm::ValidateCsrArrays(1, 4, Offsets({0, 3}), {{2, 0, 3}},
                        {{1.0f, 2.0f, 3.0f}}, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("col_index.sorted")) << report.ToString();
}

TEST(CsrValidatorTest, DetectsDuplicateColumn) {
  validate::Report report;
  mm::ValidateCsrArrays(1, 4, Offsets({0, 2}), {{1, 1}}, {{1.0f, 2.0f}},
                        RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("col_index.duplicate")) << report.ToString();
}

TEST(CsrValidatorTest, DetectsNnzMismatchAndNonFiniteValue) {
  validate::Report report;
  mm::ValidateCsrArrays(1, 4, Offsets({0, 2}), {{0, 1, 2}}, {{1.0f, kNan}},
                        RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("nnz.consistent")) << report.ToString();

  validate::Report nan_report;
  mm::ValidateCsrArrays(1, 4, Offsets({0, 2}), {{0, 1}}, {{1.0f, kNan}},
                        RootChecker(&nan_report));
  EXPECT_TRUE(nan_report.HasInvariant("values.finite"))
      << nan_report.ToString();
}

TEST(CsrValidatorTest, WarnsOnExplicitZero) {
  validate::Report report;
  mm::ValidateCsrArrays(1, 2, Offsets({0, 1}), {{0}}, {{0.0f}},
                        RootChecker(&report));
  EXPECT_TRUE(report.ok());  // A warning, not an error.
  EXPECT_TRUE(report.HasInvariant("values.nonzero")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Tree ensembles

/// depth-2 tree: node0 -> (node1, leaf2); node1 -> (leaf0, leaf1).
gbdt::RegressionTree SmallValidTree() {
  std::vector<gbdt::TreeNode> nodes(2);
  nodes[0] = {/*feature=*/0, /*threshold=*/0.5f, /*left=*/1,
              gbdt::TreeNode::EncodeLeaf(2)};
  nodes[1] = {/*feature=*/1, /*threshold=*/-1.0f,
              gbdt::TreeNode::EncodeLeaf(0), gbdt::TreeNode::EncodeLeaf(1)};
  return gbdt::RegressionTree(std::move(nodes), {1.0, 2.0, 3.0});
}

TEST(EnsembleValidatorTest, AcceptsValidEnsemble) {
  gbdt::Ensemble ensemble(0.25);
  ensemble.AddTree(SmallValidTree());
  const Status status = gbdt::ValidateEnsemble(ensemble, /*num_features=*/2);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnsembleValidatorTest, DetectsChildIndexOutOfRange) {
  std::vector<gbdt::TreeNode> nodes(1);
  nodes[0] = {0, 0.0f, /*left=*/7, gbdt::TreeNode::EncodeLeaf(1)};
  gbdt::Ensemble ensemble;
  ensemble.AddTree(gbdt::RegressionTree(std::move(nodes), {1.0, 2.0}));
  validate::Report report;
  gbdt::ValidateEnsemble(ensemble, 0, RootChecker(&report));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasInvariant("child.in_range")) << report.ToString();
}

TEST(EnsembleValidatorTest, DetectsCyclicTopology) {
  // node0 and node1 point at each other: a cycle, and leaf2 is orphaned.
  std::vector<gbdt::TreeNode> nodes(2);
  nodes[0] = {0, 0.0f, /*left=*/1, gbdt::TreeNode::EncodeLeaf(0)};
  nodes[1] = {1, 0.0f, /*left=*/0, gbdt::TreeNode::EncodeLeaf(1)};
  gbdt::Ensemble ensemble;
  ensemble.AddTree(gbdt::RegressionTree(std::move(nodes), {1.0, 2.0, 3.0}));
  validate::Report report;
  gbdt::ValidateEnsemble(ensemble, 0, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("topology.acyclic")) << report.ToString();
}

TEST(EnsembleValidatorTest, DetectsWrongLeafCount) {
  std::vector<gbdt::TreeNode> nodes(1);
  nodes[0] = {0, 0.0f, gbdt::TreeNode::EncodeLeaf(0),
              gbdt::TreeNode::EncodeLeaf(1)};
  gbdt::Ensemble ensemble;
  // One internal node needs two leaves; four were supplied.
  ensemble.AddTree(
      gbdt::RegressionTree(std::move(nodes), {1.0, 2.0, 3.0, 4.0}));
  validate::Report report;
  gbdt::ValidateEnsemble(ensemble, 0, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("leaves.count")) << report.ToString();
}

TEST(EnsembleValidatorTest, DetectsNonFiniteLeafValue) {
  gbdt::Ensemble ensemble;
  gbdt::RegressionTree tree = SmallValidTree();
  tree.mutable_leaf_values()[1] = std::numeric_limits<double>::infinity();
  ensemble.AddTree(std::move(tree));
  validate::Report report;
  gbdt::ValidateEnsemble(ensemble, 0, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("leaf_value.finite")) << report.ToString();
}

TEST(EnsembleValidatorTest, DetectsFeatureIdBeyondFeatureCount) {
  gbdt::Ensemble ensemble;
  ensemble.AddTree(SmallValidTree());  // References features 0 and 1.
  validate::Report report;
  gbdt::ValidateEnsemble(ensemble, /*num_features=*/1, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("feature.in_range")) << report.ToString();
}

TEST(QuickScorerValidatorTest, DetectsTooManyLeavesAndBadLeafOrder) {
  // 65 leaves (64 internal nodes as a left spine) exceed the 64-bit word.
  std::vector<gbdt::TreeNode> spine(64);
  std::vector<double> leaves(65, 0.0);
  for (uint32_t n = 0; n < 64; ++n) {
    const int32_t left = n + 1 < 64
                             ? static_cast<int32_t>(n + 1)
                             : gbdt::TreeNode::EncodeLeaf(64);
    spine[n] = {0, 0.0f, left, gbdt::TreeNode::EncodeLeaf(n)};
  }
  gbdt::Ensemble wide;
  wide.AddTree(gbdt::RegressionTree(std::move(spine), std::move(leaves)));
  validate::Report report;
  forest::ValidateForQuickScorer(wide, /*num_features=*/1, /*max_leaves=*/64,
                                 RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("leaves.word_width")) << report.ToString();

  // Swapped leaf numbering: in-order traversal hits leaf 1 before leaf 0.
  std::vector<gbdt::TreeNode> nodes(1);
  nodes[0] = {0, 0.0f, gbdt::TreeNode::EncodeLeaf(1),
              gbdt::TreeNode::EncodeLeaf(0)};
  gbdt::Ensemble swapped;
  swapped.AddTree(gbdt::RegressionTree(std::move(nodes), {1.0, 2.0}));
  validate::Report order_report;
  forest::ValidateForQuickScorer(swapped, 1, 64, RootChecker(&order_report));
  EXPECT_TRUE(order_report.HasInvariant("leaves.ordered"))
      << order_report.ToString();
}

// ---------------------------------------------------------------------------
// MLP + pruning masks

nn::Mlp SmallMlp() {
  return nn::Mlp(predict::Architecture(4, {3, 2}), /*seed=*/7);
}

TEST(MlpValidatorTest, AcceptsFreshNetwork) {
  const Status status = nn::ValidateMlp(SmallMlp());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(MlpValidatorTest, DetectsNonFiniteWeight) {
  nn::Mlp mlp = SmallMlp();
  mlp.layer(1).weight.At(0, 0) = kNan;
  validate::Report report;
  nn::ValidateMlp(mlp, RootChecker(&report));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasInvariant("weights.finite")) << report.ToString();
}

TEST(MlpValidatorTest, DetectsBrokenDimensionChain) {
  nn::Mlp mlp = SmallMlp();
  mlp.layer(1).weight = mm::Matrix(2, 5);  // Layer 0 emits 3, not 5.
  validate::Report report;
  nn::ValidateMlp(mlp, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("dims.chain")) << report.ToString();
}

TEST(MlpValidatorTest, DetectsBiasSizeMismatch) {
  nn::Mlp mlp = SmallMlp();
  mlp.layer(0).bias.push_back(0.0f);
  validate::Report report;
  nn::ValidateMlp(mlp, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("bias.size")) << report.ToString();
}

TEST(MaskValidatorTest, DetectsMaskWeightDisagreementAndNonBinaryMask) {
  nn::Mlp mlp = SmallMlp();
  nn::WeightMasks masks = prune::MakeDenseMasks(mlp);
  masks[0].At(0, 0) = 0.0f;  // Masked out, but the weight stays non-zero.
  validate::Report report;
  nn::ValidateMasks(mlp, masks, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("masks.weight_agreement"))
      << report.ToString();

  masks[0].At(0, 0) = 0.5f;
  validate::Report binary_report;
  nn::ValidateMasks(mlp, masks, RootChecker(&binary_report));
  EXPECT_TRUE(binary_report.HasInvariant("masks.binary"))
      << binary_report.ToString();
}

// ---------------------------------------------------------------------------
// Datasets

TEST(DatasetValidatorTest, DetectsLabelOutOfRange) {
  data::Dataset dataset(2);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{1.0f, 2.0f}, /*label=*/7.0f);
  validate::Report report;
  data::ValidateDataset(dataset, RootChecker(&report));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasInvariant("labels.range")) << report.ToString();
}

TEST(DatasetValidatorTest, DetectsNonFiniteFeature) {
  data::Dataset dataset(2);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{1.0f, kNan}, 1.0f);
  validate::Report report;
  data::ValidateDataset(dataset, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("features.finite")) << report.ToString();
}

TEST(DatasetValidatorTest, DetectsInterleavedQueryGroups) {
  data::Dataset dataset(1);
  dataset.BeginQuery(5);
  dataset.AddDocument(std::vector<float>{1.0f}, 1.0f);
  dataset.BeginQuery(6);
  dataset.AddDocument(std::vector<float>{2.0f}, 0.0f);
  dataset.BeginQuery(5);  // qid 5 again: the groups are interleaved.
  dataset.AddDocument(std::vector<float>{3.0f}, 2.0f);
  validate::Report report;
  data::ValidateDataset(dataset, RootChecker(&report));
  EXPECT_TRUE(report.HasInvariant("queries.contiguous")) << report.ToString();
}

TEST(DatasetValidatorTest, WarnsOnEmptyQuery) {
  data::Dataset dataset(1);
  dataset.BeginQuery(1);
  dataset.AddDocument(std::vector<float>{1.0f}, 1.0f);
  dataset.BeginQuery(2);  // No documents follow.
  validate::Report report;
  data::ValidateDataset(dataset, RootChecker(&report));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasInvariant("queries.empty")) << report.ToString();
}

#ifndef NDEBUG
TEST(DatasetValidatorTest, DebugParseBoundaryRejectsBadLabels) {
  // Debug builds run ValidateDataset automatically inside ParseLetor.
  auto result = data::ParseLetor("9 qid:1 1:0.5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("labels.range"),
            std::string::npos)
      << result.status().ToString();
}
#endif

// ---------------------------------------------------------------------------
// End-to-end: a real pipeline's artifacts pass every validator.

TEST(EndToEndValidationTest, TrainedArtifactsPassAllValidators) {
  data::SyntheticConfig config;
  config.num_queries = 30;
  config.min_docs_per_query = 5;
  config.max_docs_per_query = 10;
  config.num_features = 12;
  config.seed = 11;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  Status status = data::ValidateDataset(dataset);
  EXPECT_TRUE(status.ok()) << status.ToString();

  gbdt::BoosterConfig booster_config;
  booster_config.num_trees = 10;
  booster_config.num_leaves = 8;
  booster_config.min_docs_per_leaf = 5;
  gbdt::Booster booster(booster_config);
  const gbdt::Ensemble teacher = booster.TrainLambdaMart(dataset, nullptr);
  status = gbdt::ValidateEnsemble(teacher, dataset.num_features());
  EXPECT_TRUE(status.ok()) << status.ToString();
  status = forest::ValidateForQuickScorer(teacher, dataset.num_features());
  EXPECT_TRUE(status.ok()) << status.ToString();

  // The serialized form round-trips through the validating parse boundary.
  auto reloaded = gbdt::Ensemble::Deserialize(*teacher.Serialize());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  status = gbdt::ValidateEnsemble(*reloaded, dataset.num_features());
  EXPECT_TRUE(status.ok()) << status.ToString();

  // A pruned student with its masks and the CSR form of its first layer.
  nn::Mlp student(predict::Architecture(dataset.num_features(), {8, 4}),
                  /*seed=*/3);
  nn::WeightMasks masks = prune::MakeDenseMasks(student);
  prune::LevelPruneLayer(&student, /*layer=*/0, /*target_sparsity=*/0.75,
                         &masks);
  status = nn::ValidateMlp(student);
  EXPECT_TRUE(status.ok()) << status.ToString();
  status = nn::ValidateMasks(student, masks);
  EXPECT_TRUE(status.ok()) << status.ToString();
  status = mm::ValidateCsrMatrix(
      mm::CsrMatrix::FromDense(student.layer(0).weight));
  EXPECT_TRUE(status.ok()) << status.ToString();

  auto student_reloaded = nn::Mlp::Deserialize(*student.Serialize());
  ASSERT_TRUE(student_reloaded.ok()) << student_reloaded.status().ToString();
  status = nn::ValidateMlp(*student_reloaded);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace dnlr
