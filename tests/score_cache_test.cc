// Tests for the hot score cache: fingerprint stability and sensitivity, the
// Lookup/Insert/stats contract, the no-stale-score guarantee (a version
// mismatch is rejected and dropped, never served), the LRU bound under
// Zipfian key traffic, and the engine integration — a cache hit must skip
// the scorer entirely yet be bitwise identical to cache-off serving, and a
// SwapModel must invalidate every prior entry through generation stamping.
// Runs under the `threaded` ctest label for the concurrent smoke.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "replay/zipf.h"
#include "serve/engine.h"
#include "serve/ladder.h"
#include "serve/score_cache.h"
#include "serve/scorer.h"

namespace dnlr {
namespace {

using serve::DegradationLadder;
using serve::ScoreCache;
using serve::ScoreCacheConfig;
using serve::ScoreCacheStats;
using serve::ServeResponse;
using serve::ServingConfig;
using serve::ServingEngine;

constexpr uint64_t kBudgetMicros = 60'000'000;  // never the limiting factor

/// Deterministic affine scorer that counts invocations: the call count
/// proves whether a response came from the model or the cache, and the bias
/// distinguishes model generations.
class CountingScorer : public serve::FallibleScorer {
 public:
  explicit CountingScorer(float bias) : bias_(bias) {}
  std::string_view name() const override { return "counting"; }
  Status TryScore(const float* docs, uint32_t count, uint32_t stride,
                  float* out) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t i = 0; i < count; ++i) {
      out[i] = bias_ + 0.5f * docs[static_cast<size_t>(i) * stride];
    }
    return Status::Ok();
  }
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  float bias_;
  mutable std::atomic<uint64_t> calls_{0};
};

/// A single-rung ladder plus the scorer it borrows, owned together (the
/// aliasing-shared_ptr pattern SwapModel expects).
struct OwnedLadder {
  std::unique_ptr<CountingScorer> scorer;
  DegradationLadder ladder;
};

struct LadderHandle {
  std::shared_ptr<const DegradationLadder> ladder;
  const CountingScorer* scorer;
};

LadderHandle MakeCountingLadder(float bias) {
  auto owner = std::make_shared<OwnedLadder>();
  owner->scorer = std::make_unique<CountingScorer>(bias);
  const Status status =
      owner->ladder.AddRung("counting", owner->scorer.get(), 1.0);
  EXPECT_TRUE(status.ok()) << status.ToString();
  const CountingScorer* scorer = owner->scorer.get();
  const DegradationLadder* ladder = &owner->ladder;
  return {std::shared_ptr<const DegradationLadder>(std::move(owner), ladder),
          scorer};
}

std::vector<float> MakeDocs(uint32_t count, uint32_t stride, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> docs(static_cast<size_t>(count) * stride);
  for (float& v : docs) v = static_cast<float>(rng.Uniform());
  return docs;
}

// ----------------------------------------------------------------- unit level

TEST(ScoreCacheTest, FingerprintIsStableAndSensitive) {
  const std::vector<float> docs = MakeDocs(8, 4, 1);
  std::vector<float> copy = docs;
  const uint64_t fp = ScoreCache::Fingerprint(docs.data(), 8, 4);
  // Identical bytes in a different buffer fingerprint identically.
  EXPECT_EQ(ScoreCache::Fingerprint(copy.data(), 8, 4), fp);
  // One flipped float, a different count or a different stride all change
  // the fingerprint.
  copy[17] = std::nextafter(copy[17], 2.0f);
  EXPECT_NE(ScoreCache::Fingerprint(copy.data(), 8, 4), fp);
  EXPECT_NE(ScoreCache::Fingerprint(docs.data(), 4, 4), fp);
  EXPECT_NE(ScoreCache::Fingerprint(docs.data(), 4, 8), fp);
}

TEST(ScoreCacheTest, LookupInsertAndStats) {
  ScoreCache cache(ScoreCacheConfig{.capacity = 16, .num_shards = 2,
                                    .metric_prefix = "test.cache.basic"});
  const std::vector<float> scores = {1.0f, 2.0f, 3.0f};
  ScoreCache::Entry entry;
  EXPECT_FALSE(cache.Lookup(42, 1, 3, &entry));
  cache.Insert(42, 1, scores.data(), 3, 0, false);
  ASSERT_TRUE(cache.Lookup(42, 1, 3, &entry));
  EXPECT_EQ(entry.scores, scores);
  EXPECT_EQ(entry.rung, 0);
  EXPECT_FALSE(entry.degraded);

  const ScoreCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.stale_rejects, 0u);
}

TEST(ScoreCacheTest, StaleGenerationIsRejectedAndDropped) {
  ScoreCache cache(ScoreCacheConfig{.capacity = 16, .num_shards = 1,
                                    .metric_prefix = "test.cache.stale"});
  const std::vector<float> scores = {5.0f};
  cache.Insert(7, /*version=*/1, scores.data(), 1, 0, false);

  // A lookup from generation 2 must never see generation 1's scores…
  ScoreCache::Entry entry;
  EXPECT_FALSE(cache.Lookup(7, /*version=*/2, 1, &entry));
  ScoreCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_rejects, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // …and the entry is gone for the old generation too (dropped on sight).
  EXPECT_FALSE(cache.Lookup(7, /*version=*/1, 1, &entry));

  // Re-inserting under the new generation serves again.
  cache.Insert(7, 2, scores.data(), 1, 1, true);
  ASSERT_TRUE(cache.Lookup(7, 2, 1, &entry));
  EXPECT_EQ(entry.rung, 1);
  EXPECT_TRUE(entry.degraded);
}

TEST(ScoreCacheTest, CountMismatchIsACollisionGuard) {
  ScoreCache cache(ScoreCacheConfig{.capacity = 16, .num_shards = 1,
                                    .metric_prefix = "test.cache.collide"});
  const std::vector<float> scores = {1.0f, 2.0f};
  cache.Insert(9, 1, scores.data(), 2, 0, false);
  ScoreCache::Entry entry;
  // Same fingerprint, different batch shape: treated as a collision, the
  // entry is dropped rather than wrong-shaped scores served.
  EXPECT_FALSE(cache.Lookup(9, 1, 4, &entry));
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().stale_rejects, 0u);
}

TEST(ScoreCacheTest, LruBoundHoldsUnderZipfianLoad) {
  constexpr size_t kCapacity = 64;
  ScoreCache cache(ScoreCacheConfig{.capacity = kCapacity, .num_shards = 4,
                                    .metric_prefix = "test.cache.lru"});
  const replay::ZipfSampler zipf(512, 1.1);
  Rng rng(21);
  const std::vector<float> scores = {1.0f};
  for (int i = 0; i < 20'000; ++i) {
    const float key = static_cast<float>(zipf.Sample(rng));
    const uint64_t fp = ScoreCache::Fingerprint(&key, 1, 1);
    ScoreCache::Entry entry;
    if (!cache.Lookup(fp, 1, 1, &entry)) {
      cache.Insert(fp, 1, scores.data(), 1, 0, false);
    }
  }
  const ScoreCacheStats stats = cache.Stats();
  // Bounded despite 512 distinct keys, with real evictions — and the
  // Zipfian hot set keeps hitting anyway.
  EXPECT_LE(stats.entries, kCapacity);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_GT(stats.hits, stats.misses);
}

TEST(ScoreCacheTest, ClearDropsEntriesButKeepsStats) {
  ScoreCache cache(ScoreCacheConfig{.capacity = 8, .num_shards = 2,
                                    .metric_prefix = "test.cache.clear"});
  const std::vector<float> scores = {1.0f};
  cache.Insert(1, 1, scores.data(), 1, 0, false);
  cache.Insert(2, 1, scores.data(), 1, 0, false);
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  ScoreCache::Entry entry;
  EXPECT_FALSE(cache.Lookup(1, 1, 1, &entry));
}

// ----------------------------------------------------------- engine level

TEST(ScoreCacheTest, EngineHitSkipsTheScorerBitwise) {
  const LadderHandle handle = MakeCountingLadder(1.0f);
  ScoreCache cache(ScoreCacheConfig{.capacity = 64, .num_shards = 2,
                                    .metric_prefix = "test.cache.engine"});
  ServingConfig config;
  config.num_workers = 2;
  config.score_cache = &cache;
  ServingEngine engine(handle.ladder, config);

  const std::vector<float> docs = MakeDocs(16, 8, 5);
  const ServeResponse first =
      engine.ScoreSync(docs.data(), 16, 8, kBudgetMicros);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(handle.scorer->calls(), 1u);

  const ServeResponse second =
      engine.ScoreSync(docs.data(), 16, 8, kBudgetMicros);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.scores, first.scores);  // bitwise, float == float
  EXPECT_EQ(second.rung, first.rung);
  EXPECT_EQ(second.rung_name, first.rung_name);
  // The model was not consulted again: the hit replayed stored scores.
  EXPECT_EQ(handle.scorer->calls(), 1u);
  engine.Stop();
}

TEST(ScoreCacheTest, SwapModelInvalidatesThroughGenerationStamping) {
  const LadderHandle v1 = MakeCountingLadder(1.0f);
  const LadderHandle v2 = MakeCountingLadder(2.0f);
  ScoreCache cache(ScoreCacheConfig{.capacity = 64, .num_shards = 2,
                                    .metric_prefix = "test.cache.swap"});
  ServingConfig config;
  config.num_workers = 2;
  config.score_cache = &cache;
  ServingEngine engine(v1.ladder, config);

  const std::vector<float> docs = MakeDocs(8, 4, 6);
  const ServeResponse old_gen =
      engine.ScoreSync(docs.data(), 8, 4, kBudgetMicros);
  ASSERT_TRUE(old_gen.status.ok());

  ASSERT_TRUE(engine.SwapModel(v2.ladder).ok());

  // Same bytes, new generation: the v1 entry must be stale-rejected, the
  // response recomputed on v2 (bias differs by exactly 1.0 per doc).
  const ServeResponse new_gen =
      engine.ScoreSync(docs.data(), 8, 4, kBudgetMicros);
  ASSERT_TRUE(new_gen.status.ok());
  EXPECT_FALSE(new_gen.cache_hit);
  EXPECT_EQ(new_gen.model_version, old_gen.model_version + 1);
  for (size_t i = 0; i < new_gen.scores.size(); ++i) {
    // Across generations only the model relation holds (to rounding);
    // bitwise equality is a within-generation guarantee.
    EXPECT_FLOAT_EQ(new_gen.scores[i], old_gen.scores[i] + 1.0f);
  }
  EXPECT_GE(cache.Stats().stale_rejects, 1u);

  // And the re-inserted entry serves the new generation's scores.
  const ServeResponse hit = engine.ScoreSync(docs.data(), 8, 4, kBudgetMicros);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.scores, new_gen.scores);
  engine.Stop();
}

TEST(ScoreCacheTest, CacheOnAndOffServeBitwiseIdenticalScores) {
  const LadderHandle cached_handle = MakeCountingLadder(3.0f);
  const LadderHandle plain_handle = MakeCountingLadder(3.0f);
  ScoreCache cache(ScoreCacheConfig{.capacity = 128, .num_shards = 4,
                                    .metric_prefix = "test.cache.parity"});
  ServingConfig with_cache;
  with_cache.num_workers = 2;
  with_cache.score_cache = &cache;
  ServingConfig without_cache;
  without_cache.num_workers = 2;
  ServingEngine cached(cached_handle.ladder, with_cache);
  ServingEngine plain(plain_handle.ladder, without_cache);

  for (uint64_t seed = 0; seed < 12; ++seed) {
    const uint32_t count = 4 + static_cast<uint32_t>(seed) * 3;
    const std::vector<float> docs = MakeDocs(count, 6, 100 + seed);
    const ServeResponse miss =
        cached.ScoreSync(docs.data(), count, 6, kBudgetMicros);
    const ServeResponse hit =
        cached.ScoreSync(docs.data(), count, 6, kBudgetMicros);
    const ServeResponse reference =
        plain.ScoreSync(docs.data(), count, 6, kBudgetMicros);
    ASSERT_TRUE(miss.status.ok());
    ASSERT_TRUE(hit.status.ok());
    ASSERT_TRUE(reference.status.ok());
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(miss.scores, reference.scores);
    EXPECT_EQ(hit.scores, reference.scores);
  }
  cached.Stop();
  plain.Stop();
}

TEST(ScoreCacheTest, ConcurrentLookupInsertSmoke) {
  ScoreCache cache(ScoreCacheConfig{.capacity = 32, .num_shards = 4,
                                    .metric_prefix = "test.cache.threads"});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      const std::vector<float> scores = {static_cast<float>(t)};
      for (int i = 0; i < 5000; ++i) {
        const float key = static_cast<float>(rng.Below(64));
        const uint64_t version = 1 + rng.Below(2);  // racing generations
        const uint64_t fp = ScoreCache::Fingerprint(&key, 1, 1);
        ScoreCache::Entry entry;
        if (!cache.Lookup(fp, version, 1, &entry)) {
          cache.Insert(fp, version, scores.data(), 1, 0, false);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const ScoreCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 32u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * 5000);
}

}  // namespace
}  // namespace dnlr
