// dnlr command-line tool: train, distill, prune, score and evaluate ranking
// models on LETOR-format data without writing any C++.
//
// Subcommands:
//   gen           generate a synthetic LETOR file (MSN30K- or Istella-like)
//   train-forest  train a LambdaMART ensemble (optionally tuned)
//   distill       distill (and optionally first-layer-prune) a student MLP
//   score         score a LETOR file with a saved model
//   evaluate      NDCG@10 / NDCG / MAP of a saved model on a LETOR file
//   predict-time  estimate an architecture's scoring time analytically
//   validate      run the deep invariant validators on a model / data file
//   serve-bench   load-test the deadline-aware scoring service and emit a
//                 latency-percentile / rung-distribution JSON report; with
//                 --reload-every N, hot-swap a model bundle into the engine
//                 under load instead; with --shards N, run the sharded
//                 multi-tenant isolation soak (abusive tenant + one faulted
//                 shard) and emit out/serve_shard_ci.json with SLO gates
//   soak-bench    minutes-scale traffic replay against the serving engine:
//                 Zipfian query popularity, mixed candidate-set sizes,
//                 diurnal + burst load shaping, a hot score cache, periodic
//                 golden-gated hot reloads (with poisoned-bundle rejection
//                 probes) and a mid-soak fault episode; streams a LETOR file
//                 through the serve path and gates on obs-derived SLOs
//                 (per-rung p99, shed rate, cache hit rate, swap
//                 losslessness, cache-on/off bitwise parity)
//   bundle        pack / unpack / verify the single-file model bundle
//                 (teacher + student + normalizer + serve rungs, versioned
//                 and CRC-checksummed)
//   bench-scaling measure docs/s and GEMM GFLOP/s of the dense, hybrid and
//                 tree rungs across thread counts and emit a scaling JSON
//                 report (the multi-core counterpart of the paper's
//                 single-core efficiency tables)
//   stats         exercise the instrumented scoring stack and export the
//                 metrics registry as JSON; also the CI entry point for the
//                 instrumentation guarantees (--check: bitwise-identical
//                 scores with spans on/off; --max-overhead-pct: GEMM span
//                 overhead gate; --in: validate an exported report)
//
// Run `dnlr_cli <subcommand>` with no further arguments for usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bundle/bundle.h"
#include "bundle/mapped_bundle.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/cascade.h"
#include "core/pipeline.h"
#include "core/timing.h"
#include "forest/parallel_scorer.h"
#include "data/letor_io.h"
#include "data/letor_stream.h"
#include "data/synthetic.h"
#include "data/validate.h"
#include "forest/validate.h"
#include "gbdt/validate.h"
#include "nn/validate.h"
#include "forest/quickscorer.h"
#include "forest/vectorized_quickscorer.h"
#include "forest/wide_quickscorer.h"
#include "gbdt/booster.h"
#include "gbdt/tuner.h"
#include "metrics/metrics.h"
#include "nn/scorer.h"
#include "obs/metrics.h"
#include "predict/dense_predictor.h"
#include "predict/drift.h"
#include "predict/network_time.h"
#include "predict/sparse_predictor.h"
#include "prune/magnitude.h"
#include "replay/workload.h"
#include "replay/zipf.h"
#include "serve/engine.h"
#include "serve/fault_injection.h"
#include "serve/latency.h"
#include "serve/router.h"
#include "serve/score_cache.h"
#include "serve/scorer.h"
#include "serve/servable.h"

namespace dnlr::cli {
namespace {

/// Minimal --flag value parser: every option is "--name value".
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }
  std::string Require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::atof(it->second.c_str()) : fallback;
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::atoi(it->second.c_str()) : fallback;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// Fixed-precision double for JSON output (never scientific notation).
std::string FormatFixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// Creates the directory a generated artifact lands in. Bench output lives
/// under out/ (gitignored) rather than next to the bench sources, so a
/// fresh checkout needs the directory created on first run.
bool EnsureParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create directory %s: %s\n",
                 parent.string().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

/// Parses a comma-separated thread-count list like "1,2,4". Exits on junk.
std::vector<uint32_t> ParseThreadList(const std::string& csv) {
  std::vector<uint32_t> threads;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const int value = std::atoi(item.c_str());
    if (value < 1) {
      std::fprintf(stderr, "bad thread count '%s' in --threads\n",
                   item.c_str());
      std::exit(2);
    }
    threads.push_back(static_cast<uint32_t>(value));
  }
  if (threads.empty()) {
    std::fprintf(stderr, "--threads list is empty\n");
    std::exit(2);
  }
  return threads;
}

data::Dataset LoadLetorOrDie(const std::string& path) {
  auto result = data::ReadLetorFile(path);
  if (!result.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

int CmdGen(const Args& args) {
  data::SyntheticConfig config =
      args.Get("style", "msn") == "istella"
          ? data::SyntheticConfig::IstellaLike(1.0)
          : data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = args.GetInt("queries", 300);
  if (args.Has("features")) config.num_features = args.GetInt("features", 136);
  config.seed = args.GetInt("seed", 42);
  const data::Dataset dataset = data::GenerateSynthetic(config);
  const std::string out = args.Require("out");
  const Status status = data::WriteLetorFile(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %u docs / %u queries / %u features to %s\n",
              dataset.num_docs(), dataset.num_queries(),
              dataset.num_features(), out.c_str());
  return 0;
}

int CmdTrainForest(const Args& args) {
  const data::Dataset train = LoadLetorOrDie(args.Require("train"));
  data::Dataset valid;
  const bool has_valid = args.Has("valid");
  if (has_valid) valid = LoadLetorOrDie(args.Get("valid", ""));

  gbdt::Ensemble model;
  if (args.Has("tune")) {
    if (!has_valid) {
      std::fprintf(stderr, "--tune requires --valid\n");
      return 2;
    }
    gbdt::TunerConfig tuner;
    tuner.trials = args.GetInt("tune", 8);
    tuner.num_trees = args.GetInt("trees", 300);
    tuner.num_leaves = args.GetInt("leaves", 64);
    tuner.verbose = true;
    const gbdt::TunerResult result =
        gbdt::TuneLambdaMart(train, valid, tuner);
    std::printf("best trial: lr %.3f min_docs %u l2 %.2f -> NDCG@10 %.4f\n",
                result.best().config.learning_rate,
                result.best().config.min_docs_per_leaf,
                result.best().config.lambda_l2, result.best().valid_ndcg);
    gbdt::Booster booster(result.best().config);
    model = booster.TrainLambdaMart(train, &valid);
  } else {
    gbdt::BoosterConfig config;
    config.num_trees = args.GetInt("trees", 300);
    config.num_leaves = args.GetInt("leaves", 64);
    config.learning_rate = args.GetDouble("lr", 0.06);
    config.min_docs_per_leaf = args.GetInt("min-docs", 40);
    config.lambda_l2 = args.GetDouble("l2", 5.0);
    if (has_valid) {
      config.early_stopping_rounds = 5;
      config.eval_period = 25;
    }
    gbdt::Booster booster(config);
    model = booster.TrainLambdaMart(train, has_valid ? &valid : nullptr);
  }

  const std::string out = args.Require("out");
  const Status status = model.SaveToFile(out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %u trees (max %u leaves) to %s\n", model.num_trees(),
              model.MaxLeaves(), out.c_str());
  return 0;
}

int CmdDistill(const Args& args) {
  const data::Dataset train = LoadLetorOrDie(args.Require("train"));
  auto teacher = gbdt::Ensemble::LoadFromFile(args.Require("teacher"));
  if (!teacher.ok()) {
    std::fprintf(stderr, "%s\n", teacher.status().ToString().c_str());
    return 1;
  }
  auto arch =
      predict::Architecture::Parse(args.Require("arch"), train.num_features());
  if (!arch.ok()) {
    std::fprintf(stderr, "%s\n", arch.status().ToString().c_str());
    return 1;
  }

  core::PipelineConfig config;
  config.distill.epochs = args.GetInt("epochs", 40);
  config.distill.batch_size = args.GetInt("batch", 256);
  config.distill.adam.learning_rate = args.GetDouble("lr", 2e-3);
  config.distill.gamma_epochs = {
      static_cast<uint32_t>(config.distill.epochs * 7 / 10),
      static_cast<uint32_t>(config.distill.epochs * 9 / 10)};
  config.prune.target_sparsity = args.GetDouble("prune", 0.0);
  config.prune.train = config.distill;
  config.prune.train.gamma_epochs.clear();
  core::Pipeline pipeline(config);

  const core::DistilledModel model =
      config.prune.target_sparsity > 0.0
          ? pipeline.DistillAndPrune(*arch, train, *teacher)
          : pipeline.DistillDense(*arch, train, *teacher);

  const std::string out = args.Require("out");
  const Status status = model.mlp.SaveToFile(out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %s student to %s (first layer %.1f%% sparse)\n",
              arch->ToString().c_str(), out.c_str(),
              100.0 * model.first_layer_sparsity);
  return 0;
}

/// Loads either an ensemble or an MLP and builds the matching scorer.
/// Returns nullptr on failure. The normalizer is fitted on `data` when an
/// MLP is loaded (matching how students normalize at deploy time when the
/// training statistics travel with the index).
std::unique_ptr<forest::DocumentScorer> MakeScorer(
    const std::string& model_path, const std::string& engine,
    const data::Dataset& dataset, data::ZNormalizer* normalizer) {
  std::ifstream probe(model_path);
  if (!probe) {
    std::fprintf(stderr, "cannot open %s\n", model_path.c_str());
    return nullptr;
  }
  std::string first_word;
  probe >> first_word;

  if (first_word == "ensemble") {
    auto model = gbdt::Ensemble::LoadFromFile(model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return nullptr;
    }
    // Keep the model alive alongside the scorer: each Owner wrapper below
    // adopts the heap ensemble after its scorer base (which copies or
    // retains it) is constructed.
    auto* owned = new gbdt::Ensemble(std::move(model).value());
    if (owned->MaxLeaves() > 64 || engine == "wide") {
      struct Owner : forest::WideQuickScorer {
        Owner(gbdt::Ensemble* e, uint32_t f)
            : forest::WideQuickScorer(*e, f), model(e) {}
        std::unique_ptr<gbdt::Ensemble> model;
      };
      return std::make_unique<Owner>(owned, dataset.num_features());
    }
    if (engine == "naive") {
      struct Owner : forest::NaiveTraversalScorer {
        explicit Owner(gbdt::Ensemble* e)
            : forest::NaiveTraversalScorer(*e), model(e) {}
        std::unique_ptr<gbdt::Ensemble> model;
      };
      return std::make_unique<Owner>(owned);
    }
    if (engine == "vqs") {
      struct Owner : forest::VectorizedQuickScorer {
        Owner(gbdt::Ensemble* e, uint32_t f)
            : forest::VectorizedQuickScorer(*e, f), model(e) {}
        std::unique_ptr<gbdt::Ensemble> model;
      };
      return std::make_unique<Owner>(owned, dataset.num_features());
    }
    struct Owner : forest::QuickScorer {
      Owner(gbdt::Ensemble* e, uint32_t f)
          : forest::QuickScorer(*e, f), model(e) {}
      std::unique_ptr<gbdt::Ensemble> model;
    };
    return std::make_unique<Owner>(owned, dataset.num_features());
  }

  if (first_word == "mlp") {
    auto model = nn::Mlp::LoadFromFile(model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return nullptr;
    }
    normalizer->Fit(dataset);
    if (engine == "hybrid" || model->layer(0).weight.Sparsity() >= 0.5) {
      return std::make_unique<nn::HybridNeuralScorer>(*model, normalizer);
    }
    return std::make_unique<nn::NeuralScorer>(*model, normalizer);
  }

  std::fprintf(stderr, "unrecognized model file %s (starts with '%s')\n",
               model_path.c_str(), first_word.c_str());
  return nullptr;
}

int CmdScore(const Args& args) {
  const data::Dataset dataset = LoadLetorOrDie(args.Require("data"));
  data::ZNormalizer normalizer;
  const auto scorer = MakeScorer(args.Require("model"),
                                 args.Get("engine", "auto"), dataset,
                                 &normalizer);
  if (scorer == nullptr) return 1;

  const std::vector<float> scores = scorer->ScoreDataset(dataset);
  const std::string out = args.Get("out", "-");
  if (out == "-") {
    for (const float s : scores) std::printf("%.6f\n", s);
  } else {
    std::ofstream file(out);
    for (const float s : scores) file << s << '\n';
    if (!file) {
      std::fprintf(stderr, "failed to write scores to %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu scores to %s with %s\n", scores.size(), out.c_str(),
                std::string(scorer->name()).c_str());
  }
  if (args.Has("time")) {
    std::printf("scoring time: %.3f us/doc (%s)\n",
                core::MeasureScorerMicrosPerDoc(*scorer, dataset),
                std::string(scorer->name()).c_str());
  }
  return 0;
}

int CmdEvaluate(const Args& args) {
  const data::Dataset dataset = LoadLetorOrDie(args.Require("data"));
  data::ZNormalizer normalizer;
  const auto scorer = MakeScorer(args.Require("model"),
                                 args.Get("engine", "auto"), dataset,
                                 &normalizer);
  if (scorer == nullptr) return 1;
  const std::vector<float> scores = scorer->ScoreDataset(dataset);
  std::printf("engine   %s\n", std::string(scorer->name()).c_str());
  std::printf("NDCG@10  %.4f\n", metrics::MeanNdcg(dataset, scores, 10));
  std::printf("NDCG     %.4f\n", metrics::MeanNdcg(dataset, scores, 0));
  std::printf("MAP      %.4f\n", metrics::MeanAp(dataset, scores));
  std::printf("us/doc   %.3f\n",
              core::MeasureScorerMicrosPerDoc(*scorer, dataset));
  return 0;
}

int CmdPredictTime(const Args& args) {
  const uint32_t features = args.GetInt("features", 136);
  auto arch = predict::Architecture::Parse(args.Require("arch"), features);
  if (!arch.ok()) {
    std::fprintf(stderr, "%s\n", arch.status().ToString().c_str());
    return 1;
  }
  const uint32_t batch = args.GetInt("batch", 64);
  const double sparsity = args.GetDouble("sparsity", 0.95);

  std::fprintf(stderr, "calibrating predictors (seconds)...\n");
  predict::DenseCalibrationConfig dense_config;
  dense_config.m_values = {16, 32, 64, 128, 256, 512, 1024};
  dense_config.k_values = {16, 32, 64, features, 256, 512};
  dense_config.n_values = {16, batch, 256};
  const auto dense = predict::DenseTimePredictor::Calibrate(dense_config);
  const auto sparse = predict::SparseTimePredictor::Calibrate();

  const auto estimate =
      predict::EstimateHybridTime(*arch, batch, sparsity, dense, sparse);
  std::printf("architecture        %s (input %u)\n", arch->ToString().c_str(),
              features);
  std::printf("dense               %.3f us/doc\n", estimate.dense_us_per_doc);
  std::printf("first layer share   %.0f%%\n",
              estimate.first_layer_impact_percent);
  std::printf("pruned (no L1)      %.3f us/doc\n", estimate.pruned_us_per_doc);
  std::printf("hybrid @ %.0f%% L1    %.3f us/doc\n", 100.0 * sparsity,
              estimate.hybrid_us_per_doc);
  return 0;
}

/// Hot-reload load test (serve-bench --reload-every N): packs a freshly
/// trained teacher + random student into a model bundle, serves it through
/// a Servable-backed engine, and every N requests re-loads the bundle from
/// disk and atomically SwapModels it in while traffic keeps flowing. Every
/// swap loads the same bundle, so the golden-score validation gate demands
/// bitwise-identical scores across generations; the JSON report carries the
/// swap counters, the model-version span observed on responses, and the
/// failed-request count (which must be zero: a hot swap may never drop
/// traffic).
///
/// With --binary 1 the reloads come from a v2 binary bundle (mmap load
/// path) while the golden scores are captured from the text-loaded initial
/// generation — the gate then directly proves text→binary conversion and
/// the zero-copy load path are bitwise score-lossless under live traffic.
int CmdServeBenchReload(const Args& args) {
  const auto features = static_cast<uint32_t>(args.GetInt("features", 64));
  const auto queries = static_cast<uint32_t>(args.GetInt("queries", 60));
  const int requests = args.GetInt("requests", 200);
  const int reload_every = args.GetInt("reload-every", 25);
  const auto deadline_us =
      static_cast<uint64_t>(args.GetInt("deadline-us", 20000));
  const auto workers = static_cast<uint32_t>(args.GetInt("workers", 4));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string out = args.Get("out", "out/serve_reload.json");
  const std::string bundle_path =
      args.Get("bundle", "out/serve_reload.bundle");
  const bool binary = args.GetInt("binary", 0) != 0;

  data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = queries;
  config.num_features = features;
  config.seed = seed;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  std::fprintf(stderr, "corpus: %u docs / %u queries / %u features\n",
               dataset.num_docs(), dataset.num_queries(),
               dataset.num_features());

  gbdt::BoosterConfig bc;
  bc.num_trees = static_cast<uint32_t>(args.GetInt("trees", 20));
  bc.num_leaves = 16;
  std::fprintf(stderr, "training %u-tree teacher...\n", bc.num_trees);
  gbdt::Booster booster(bc);
  const gbdt::Ensemble teacher = booster.TrainLambdaMart(dataset, nullptr);
  const predict::Architecture student_arch(features, {64, 32});
  const nn::Mlp student(student_arch, seed + 1);
  data::ZNormalizer normalizer;
  normalizer.Fit(dataset);

  // Measured rung costs, clamped non-increasing as the ladder (and the
  // bundle's rung grammar) require.
  serve::ServableOptions sopt;
  sopt.num_features = features;
  gbdt::Ensemble subset(teacher.base_score());
  const uint32_t subset_trees =
      std::max(1u, teacher.num_trees() / sopt.subset_tree_divisor);
  for (uint32_t t = 0; t < subset_trees; ++t) subset.AddTree(teacher.tree(t));
  const forest::QuickScorer subset_qs(subset, features);
  const nn::NeuralScorer student_scorer(student, &normalizer);
  const double student_cost =
      core::MeasureScorerMicrosPerDocSynthetic(student_scorer, 2048, features);
  const double subset_cost =
      core::MeasureScorerMicrosPerDocSynthetic(subset_qs, 2048, features);
  double costs[3] = {
      student_cost,
      serve::PredictCascadeMicrosPerDoc(subset_cost, student_cost,
                                        sopt.cascade_rescore_fraction),
      subset_cost};
  for (int i = 1; i < 3; ++i) costs[i] = std::min(costs[i], costs[i - 1]);

  bundle::RungConfig rungs;
  rungs.rungs = {{"student", "student", costs[0]},
                 {"cascade", "cascade", costs[1]},
                 {"forest-subset", "teacher-subset", costs[2]}};
  bundle::ModelBundle pack;
  Status status = pack.SetTeacher(teacher);
  if (status.ok()) status = pack.SetStudent(student);
  if (status.ok()) status = pack.SetNormalizer(normalizer);
  if (status.ok()) status = pack.SetRungs(rungs);
  if (status.ok() && !EnsureParentDir(bundle_path)) return 1;
  if (status.ok()) status = pack.SaveToFile(bundle_path);
  // The binary twin the reloads come from; the initial generation (and the
  // golden scores) still come from the text bundle, so the swap gate
  // compares binary-loaded scores against text-loaded ones bitwise.
  std::string reload_path = bundle_path;
  if (binary) {
    reload_path = bundle_path + ".bin";
    if (status.ok()) {
      status = pack.SaveToFile(reload_path, bundle::BundleFormat::kBinary);
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "packed bundle %s%s\n", bundle_path.c_str(),
               binary ? " (+ binary twin)" : "");

  auto servable = serve::Servable::LoadFromFile(bundle_path, sopt);
  if (!servable.ok()) {
    std::fprintf(stderr, "%s\n", servable.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const serve::Servable> initial(std::move(servable).value());
  auto ladder = serve::Servable::LadderHandle(initial);
  for (size_t i = 0; i < ladder->num_rungs(); ++i) {
    std::fprintf(stderr, "rung %zu %-14s %8.3f us/doc\n", i,
                 ladder->rung(i).name.c_str(),
                 ladder->rung(i).predicted_us_per_doc);
  }

  // The swap gate's golden probe: scores captured on the first generation;
  // every candidate must reproduce them bitwise before it may serve.
  const float* probe_docs = dataset.Row(dataset.QueryBegin(0));
  const uint32_t probe_count = std::min(dataset.QuerySize(0), 64u);
  auto golden =
      serve::CaptureGoldenScores(*ladder, probe_docs, probe_count, features);
  if (!golden.ok()) {
    std::fprintf(stderr, "%s\n", golden.status().ToString().c_str());
    return 1;
  }

  serve::ServingConfig sc;
  sc.num_workers = workers;
  sc.queue_capacity = static_cast<uint32_t>(args.GetInt("queue", 128));
  serve::ServingEngine engine(std::move(ladder), sc);
  const serve::ServingEngine::SwapValidator gate =
      [&](const serve::DegradationLadder& candidate) {
        return serve::RunGoldenSmoke(candidate, probe_docs, probe_count,
                                     features, &*golden);
      };

  std::fprintf(stderr, "serving %d requests, reloading every %d...\n",
               requests, reload_every);
  std::vector<std::future<serve::ServeResponse>> inflight;
  std::vector<serve::ServeResponse> responses;
  responses.reserve(static_cast<size_t>(requests));
  const size_t window = static_cast<size_t>(workers) * 4;
  uint64_t reload_failures = 0;
  for (int r = 0; r < requests; ++r) {
    const uint32_t q = static_cast<uint32_t>(r) % dataset.num_queries();
    serve::ServeRequest request;
    request.docs = dataset.Row(dataset.QueryBegin(q));
    request.count = dataset.QuerySize(q);
    request.stride = dataset.num_features();
    request.deadline =
        serve::Deadline::AfterMicros(engine.clock(), deadline_us);
    inflight.push_back(engine.Submit(request));
    if (inflight.size() >= window) {
      responses.push_back(inflight.front().get());
      inflight.erase(inflight.begin());
    }
    if ((r + 1) % reload_every == 0) {
      auto candidate = serve::Servable::LoadFromFile(reload_path, sopt);
      if (!candidate.ok()) {
        std::fprintf(stderr, "reload: %s\n",
                     candidate.status().ToString().c_str());
        ++reload_failures;
        continue;
      }
      const Status swapped = engine.SwapModel(
          serve::Servable::LadderHandle(std::move(candidate).value()), gate);
      if (!swapped.ok()) {
        std::fprintf(stderr, "swap: %s\n", swapped.ToString().c_str());
        ++reload_failures;
      }
    }
  }
  for (auto& future : inflight) responses.push_back(future.get());
  engine.Stop();

  const serve::ServeCountersSnapshot counters = engine.counters().Snapshot();
  uint64_t failed_requests = 0;
  uint64_t min_version = ~0ull;
  uint64_t max_version = 0;
  std::vector<double> ok_latencies;
  for (const auto& resp : responses) {
    if (!resp.status.ok()) {
      ++failed_requests;
      continue;
    }
    ok_latencies.push_back(static_cast<double>(resp.total_micros));
    min_version = std::min(min_version, resp.model_version);
    max_version = std::max(max_version, resp.model_version);
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"serve-bench-reload\",\n";
  json << "  \"config\": {\"requests\": " << requests
       << ", \"reload_every\": " << reload_every
       << ", \"deadline_us\": " << deadline_us
       << ", \"workers\": " << workers << ", \"seed\": " << seed
       << ", \"bundle\": \"" << bundle_path << "\", \"binary\": "
       << (binary ? 1 : 0) << "},\n";
  json << "  \"swaps\": {\"attempted\": " << counters.swaps_attempted
       << ", \"completed\": " << counters.swaps_completed
       << ", \"rejected\": " << counters.swaps_rejected
       << ", \"reload_failures\": " << reload_failures
       << ", \"final_model_version\": " << engine.model_version()
       << ", \"min_response_version\": "
       << (max_version == 0 ? 0 : min_version)
       << ", \"max_response_version\": " << max_version << "},\n";
  json << "  \"overall\": {\"ok\": " << counters.ok
       << ", \"failed_requests\": " << failed_requests
       << ", \"shed_queue_full\": " << counters.shed_queue_full
       << ", \"shed_deadline\": " << counters.shed_deadline
       << ", \"deadline_exceeded\": " << counters.deadline_exceeded
       << ", \"degraded\": " << counters.degraded
       << ", \"p50_us\": " << FormatFixed(serve::Percentile(ok_latencies, 50), 1)
       << ", \"p99_us\": " << FormatFixed(serve::Percentile(ok_latencies, 99), 1)
       << "}\n";
  json << "}\n";

  if (!EnsureParentDir(out)) return 1;
  std::ofstream file(out);
  file << json.str();
  if (!file) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s", json.str().c_str());
  std::printf("wrote %s\n", out.c_str());

  // Gates: swaps must actually happen, none may be rejected (it is the
  // same bundle every time), and no request may fail during the swaps.
  if (counters.swaps_completed == 0 || counters.swaps_rejected != 0 ||
      reload_failures != 0 || failed_requests != 0) {
    std::fprintf(stderr,
                 "FAIL: completed=%llu rejected=%llu reload_failures=%llu "
                 "failed_requests=%llu\n",
                 static_cast<unsigned long long>(counters.swaps_completed),
                 static_cast<unsigned long long>(counters.swaps_rejected),
                 static_cast<unsigned long long>(reload_failures),
                 static_cast<unsigned long long>(failed_requests));
    return 1;
  }
  std::printf("reload gate ok: %llu swaps, %zu responses, 0 failures\n",
              static_cast<unsigned long long>(counters.swaps_completed),
              responses.size());
  return 0;
}

/// One soak phase: every tenant replays Zipf-skewed traffic from its own
/// thread until the phase deadline; the abusive tenant (if any) ignores
/// pacing and hammers as fast as the router answers it — subject only to a
/// tiny bounded backoff when the router sheds it, so "abusive" means
/// saturating its quota, not busy-burning a CPU core generating rejections.
void RunTenantTraffic(serve::ShardedRouter& router, const data::Dataset& data,
                      const replay::ZipfSampler& zipf, uint64_t tenants,
                      int64_t abusive_tenant, uint64_t pace_us,
                      uint64_t deadline_us, uint64_t duration_ms,
                      uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(tenants);
  for (uint64_t tenant = 0; tenant < tenants; ++tenant) {
    threads.emplace_back([&, tenant] {
      dnlr::Rng rng(seed ^ (tenant * 0x9E3779B97F4A7C15ull));
      const bool paced = static_cast<int64_t>(tenant) != abusive_tenant;
      // Exponential 25 -> 200 us backoff on shed responses, reset by any
      // non-shed answer. The cap stays far under 1/quota-rate (2 ms at the
      // default 500/s), so a quota-limited tenant still attempts thousands
      // of requests per second and the quota-rejection gates keep firing —
      // it just stops spinning a core when every answer is "go away".
      constexpr uint64_t kShedBackoffStartUs = 25;
      constexpr uint64_t kShedBackoffCapUs = 200;
      uint64_t shed_backoff_us = 0;
      // Relaxed stop flag: plain shutdown signal; the join below orders
      // everything the threads wrote.
      while (!stop.load(std::memory_order_relaxed)) {
        const uint32_t q = zipf.Sample(rng);
        const serve::ShardedRouter::Response resp = router.ScoreSync(
            tenant, data.Row(data.QueryBegin(q)), data.QuerySize(q),
            data.num_features(), deadline_us);
        if (resp.serve.status.code() == StatusCode::kResourceExhausted) {
          shed_backoff_us =
              shed_backoff_us == 0
                  ? kShedBackoffStartUs
                  : std::min(shed_backoff_us * 2, kShedBackoffCapUs);
          std::this_thread::sleep_for(
              std::chrono::microseconds(shed_backoff_us));
        } else {
          shed_backoff_us = 0;
        }
        if (paced && pace_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();
}

/// Multi-tenant isolation soak (`serve-bench --shards N`): a ShardedRouter
/// over N fault-injected shards, M tenant threads replaying Zipfian traffic,
/// one abusive tenant hammering its quota, and a correlated-burst outage on
/// one shard mid-soak (shipped and later rolled back via SwapModelOnShard).
/// Emits out/serve_shard_ci.json and exits 1 when any isolation gate fails:
///   - the abusive tenant is quota-rejected at its configured rate and
///     admitted no faster than rate x duration + burst (with slack);
///   - every other tenant's p99 stays within --p99-ratio of its no-abuse
///     baseline (or under the absolute --p99-floor-us) and its error rate
///     stays under --max-error-rate;
///   - the faulted shard quarantines and is probe-readmitted at least once;
///   - no model swap fails.
int CmdServeBenchSharded(const Args& args) {
  const auto shards = static_cast<size_t>(args.GetInt("shards", 4));
  const auto tenants = static_cast<uint64_t>(args.GetInt("tenants", 8));
  const int64_t abusive_tenant = args.GetInt("abusive-tenant", 0);
  const auto soak_ms = static_cast<uint64_t>(args.GetInt("soak-ms", 2000));
  const auto baseline_ms = static_cast<uint64_t>(
      args.GetInt("baseline-ms", static_cast<int>(std::max<uint64_t>(
                                     500, soak_ms / 4))));
  const auto pace_us = static_cast<uint64_t>(args.GetInt("pace-us", 1000));
  const auto deadline_us =
      static_cast<uint64_t>(args.GetInt("deadline-us", 50'000));
  const double quota_rate = args.GetDouble("quota-rate", 500.0);
  const double quota_burst = args.GetDouble("quota-burst", 50.0);
  const double fault_rate = args.GetDouble("fault-rate", 0.2);
  // Defaults chosen so the outage dominates the faulted window: at trigger
  // 0.05 and length 300 about 94% of the shard's batches during the faulty
  // generation land inside a burst, which is what forces quarantine; the
  // rollback swap then lets the half-open probes readmit the shard.
  const double burst_trigger = args.GetDouble("burst-trigger", 0.05);
  const auto burst_len =
      static_cast<uint32_t>(args.GetInt("burst-len", 300));
  const auto features = static_cast<uint32_t>(args.GetInt("features", 64));
  const auto queries = static_cast<uint32_t>(args.GetInt("queries", 60));
  const auto workers = static_cast<uint32_t>(args.GetInt("workers", 2));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const double p99_ratio = args.GetDouble("p99-ratio", 1.5);
  const double p99_floor_us = args.GetDouble("p99-floor-us", 5000.0);
  const double max_error_rate = args.GetDouble("max-error-rate", 0.01);
  const double admit_slack = args.GetDouble("admit-slack", 2.0);
  const std::string out = args.Get("out", "out/serve_shard_ci.json");
  if (shards < 2 || tenants < 2) {
    std::fprintf(stderr, "--shards and --tenants must both be >= 2\n");
    return 2;
  }

  // Synthetic corpus + per-shard model generations: each shard serves its
  // own small MLP (a distinct generation), all sharing one normalizer and a
  // tiny shared floor rung.
  data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = queries;
  config.num_features = features;
  config.seed = seed;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  data::ZNormalizer normalizer;
  normalizer.Fit(dataset);
  const replay::ZipfSampler zipf(dataset.num_queries(),
                                 args.GetDouble("zipf-exponent", 1.1));

  const predict::Architecture strong_arch(features, {64, 32});
  const predict::Architecture floor_arch(features, {16});
  std::vector<std::unique_ptr<nn::Mlp>> strong_mlps;
  std::vector<std::unique_ptr<nn::NeuralScorer>> strong_scorers;
  for (size_t s = 0; s < shards; ++s) {
    strong_mlps.push_back(std::make_unique<nn::Mlp>(strong_arch, seed + s));
    strong_scorers.push_back(
        std::make_unique<nn::NeuralScorer>(*strong_mlps[s], &normalizer));
  }
  const nn::Mlp floor_mlp(floor_arch, seed + 1000);
  const nn::NeuralScorer floor_scorer(floor_mlp, &normalizer);

  // Nominal rung costs: with 50 ms budgets rung choice is never the
  // bottleneck here, and fixed costs keep the soak's setup instant.
  const double strong_cost = 4.0;
  const double floor_cost = 0.5;

  // Every rung of every shard goes through a FaultInjectingScorer. The
  // clean generation's injector is a pass-through (all probabilities 0);
  // the faulted generation adds i.i.d. transient faults on the strong rung
  // plus a correlated burst schedule SHARED by both rungs — one outage
  // domain, so a triggered burst takes the whole shard down (what the
  // quarantine lifecycle exists for).
  std::vector<std::unique_ptr<serve::FaultInjectingScorer>> injectors;
  auto make_clean_ladder = [&](size_t s) {
    serve::FaultInjectionConfig quiet;
    quiet.seed = seed + s;
    injectors.push_back(std::make_unique<serve::FaultInjectingScorer>(
        strong_scorers[s].get(), quiet));
    auto ladder = std::make_shared<serve::DegradationLadder>();
    Status status = ladder->AddRung("dense-nn", injectors.back().get(),
                                    strong_cost);
    if (status.ok()) {
      injectors.push_back(std::make_unique<serve::FaultInjectingScorer>(
          &floor_scorer, quiet));
      status = ladder->AddRung("tiny-nn", injectors.back().get(), floor_cost);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
    return ladder;
  };

  std::vector<std::shared_ptr<const serve::DegradationLadder>> clean_ladders;
  for (size_t s = 0; s < shards; ++s) {
    clean_ladders.push_back(make_clean_ladder(s));
  }

  serve::RouterConfig rc;
  rc.health_window_micros = 100'000;
  rc.min_window_requests = 8;
  rc.drain_micros = 5'000;
  rc.quarantine_micros = 10'000;
  rc.probe_successes_to_readmit = 3;
  serve::ServingConfig sc;
  sc.num_workers = workers;
  sc.queue_capacity = static_cast<uint32_t>(args.GetInt("queue", 64));

  // ---- Phase 1: no-abuse baseline. A separate router instance (its own
  // registry namespace) with clean shards and fully paced traffic gives
  // each tenant the p99 its soak numbers are judged against.
  std::fprintf(stderr,
               "baseline: %zu shards / %llu tenants, %llu ms paced...\n",
               shards, static_cast<unsigned long long>(tenants),
               static_cast<unsigned long long>(baseline_ms));
  std::vector<double> baseline_p99(tenants, 0.0);
  {
    serve::ShardedRouter baseline(clean_ladders, sc, rc);
    RunTenantTraffic(baseline, dataset, zipf, tenants, /*abusive_tenant=*/-1,
                     pace_us, deadline_us, baseline_ms, seed);
    baseline.Stop();
    for (uint64_t t = 0; t < tenants; ++t) {
      baseline_p99[t] = baseline.TenantSloSnapshot(t).p99_us;
    }
  }

  // ---- Phase 2: the soak. The abusive tenant gets a tight quota and
  // ignores pacing; one shard (the primary of a well-behaved tenant, so
  // failover is exercised) is swapped to a burst-faulty model generation
  // at 20% of the soak and rolled back at 70%.
  serve::ShardedRouter router(clean_ladders, sc, rc);
  router.SetTenantQuota(static_cast<uint64_t>(abusive_tenant),
                        serve::TenantQuota{quota_rate, quota_burst});
  uint64_t victim_tenant = 0;
  for (uint64_t t = 0; t < tenants; ++t) {
    if (static_cast<int64_t>(t) != abusive_tenant) {
      victim_tenant = t;
      break;
    }
  }
  const uint32_t faulted = router.PrimaryShardFor(victim_tenant);

  serve::FaultInjectionConfig faulty_config;
  faulty_config.transient_fault_probability = fault_rate;
  faulty_config.seed = seed + 7777;
  auto burst = std::make_shared<serve::FaultBurstState>(
      burst_trigger, burst_len, seed + 8888);
  auto faulty_ladder = std::make_shared<serve::DegradationLadder>();
  {
    injectors.push_back(std::make_unique<serve::FaultInjectingScorer>(
        strong_scorers[faulted].get(), faulty_config, burst));
    Status status = faulty_ladder->AddRung("dense-nn", injectors.back().get(),
                                           strong_cost);
    if (status.ok()) {
      serve::FaultInjectionConfig floor_faults;  // bursts only on the floor
      floor_faults.seed = seed + 7778;
      injectors.push_back(std::make_unique<serve::FaultInjectingScorer>(
          &floor_scorer, floor_faults, burst));
      status = faulty_ladder->AddRung("tiny-nn", injectors.back().get(),
                                      floor_cost);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::fprintf(stderr,
               "soak: %llu ms, abusive tenant %lld (quota %.0f/s burst %.0f),"
               " faulting shard %u at 20%%, rolling back at 70%%...\n",
               static_cast<unsigned long long>(soak_ms),
               static_cast<long long>(abusive_tenant), quota_rate, quota_burst,
               faulted);
  uint64_t failed_swaps = 0;
  std::thread orchestrator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(soak_ms / 5));
    if (!router.SwapModelOnShard(faulted, faulty_ladder).ok()) ++failed_swaps;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(soak_ms / 2));  // 20% + 50% = 70%
    if (!router.SwapModelOnShard(faulted, clean_ladders[faulted]).ok()) {
      ++failed_swaps;
    }
  });
  RunTenantTraffic(router, dataset, zipf, tenants, abusive_tenant, pace_us,
                   deadline_us, soak_ms, seed + 1);
  orchestrator.join();
  router.Stop();

  // ---- Gates and report.
  const serve::RouterCountersSnapshot counters =
      router.counters().Snapshot();
  const serve::TenantSlo abusive =
      router.TenantSloSnapshot(static_cast<uint64_t>(abusive_tenant));
  const double soak_seconds = static_cast<double>(soak_ms) * 1e-3;
  const double admit_budget =
      admit_slack * (quota_rate * soak_seconds + quota_burst);
  const bool gate_abusive_rejected = abusive.quota_rejected > 0;
  const bool gate_abusive_bounded =
      static_cast<double>(abusive.ok + abusive.errors) <= admit_budget;
  const bool gate_quarantine = counters.quarantines >= 1;
  const bool gate_readmit = counters.readmissions >= 1;
  const bool gate_swaps = failed_swaps == 0;

  bool gate_p99 = true;
  bool gate_errors = true;
  std::ostringstream tenants_json;
  for (uint64_t t = 0; t < tenants; ++t) {
    const serve::TenantSlo slo = router.TenantSloSnapshot(t);
    const bool is_abusive = static_cast<int64_t>(t) == abusive_tenant;
    const double p99_budget =
        std::max(p99_ratio * baseline_p99[t], p99_floor_us);
    const bool p99_ok = is_abusive || slo.p99_us <= p99_budget;
    const bool errors_ok = is_abusive || slo.error_rate < max_error_rate;
    gate_p99 &= p99_ok;
    gate_errors &= errors_ok;
    tenants_json << "    {\"tenant\": " << t << ", \"abusive\": "
                 << (is_abusive ? "true" : "false")
                 << ", \"requests\": " << slo.requests
                 << ", \"ok\": " << slo.ok << ", \"errors\": " << slo.errors
                 << ", \"quota_rejected\": " << slo.quota_rejected
                 << ", \"error_rate\": " << FormatFixed(slo.error_rate, 4)
                 << ", \"quota_reject_rate\": "
                 << FormatFixed(slo.quota_reject_rate, 4)
                 << ", \"p99_us\": " << FormatFixed(slo.p99_us, 1)
                 << ", \"baseline_p99_us\": "
                 << FormatFixed(baseline_p99[t], 1)
                 << ", \"p99_budget_us\": " << FormatFixed(p99_budget, 1)
                 << ", \"p99_ok\": " << (p99_ok ? "true" : "false")
                 << ", \"errors_ok\": " << (errors_ok ? "true" : "false")
                 << "}" << (t + 1 < tenants ? "," : "") << "\n";
  }
  const bool pass = gate_abusive_rejected && gate_abusive_bounded &&
                    gate_quarantine && gate_readmit && gate_swaps &&
                    gate_p99 && gate_errors;

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"serve-bench-sharded\",\n";
  json << "  \"config\": {\"shards\": " << shards
       << ", \"tenants\": " << tenants
       << ", \"abusive_tenant\": " << abusive_tenant
       << ", \"soak_ms\": " << soak_ms << ", \"baseline_ms\": " << baseline_ms
       << ", \"deadline_us\": " << deadline_us
       << ", \"quota_rate\": " << FormatFixed(quota_rate, 1)
       << ", \"quota_burst\": " << FormatFixed(quota_burst, 1)
       << ", \"fault_rate\": " << FormatFixed(fault_rate, 3)
       << ", \"burst_trigger\": " << FormatFixed(burst_trigger, 4)
       << ", \"burst_len\": " << burst_len
       << ", \"faulted_shard\": " << faulted
       << ", \"workers\": " << workers << ", \"seed\": " << seed << "},\n";
  json << "  \"shards\": [\n";
  for (size_t s = 0; s < shards; ++s) {
    const serve::ServeCountersSnapshot engine =
        router.shard_engine(s).counters().Snapshot();
    json << "    {\"shard\": " << s << ", \"state\": \""
         << serve::ShardStateName(router.shard_state(s))
         << "\", \"model_version\": "
         << router.shard_engine(s).model_version()
         << ", \"ok\": " << engine.ok << ", \"failed\": " << engine.failed
         << ", \"shed_queue_full\": " << engine.shed_queue_full
         << ", \"shed_stopped\": " << engine.shed_stopped
         << ", \"swaps_attempted\": " << engine.swaps_attempted
         << ", \"swaps_completed\": " << engine.swaps_completed
         << ", \"swaps_rejected\": " << engine.swaps_rejected << "}"
         << (s + 1 < shards ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"router\": {\"requests\": " << counters.requests
       << ", \"admitted\": " << counters.admitted
       << ", \"quota_rejected\": " << counters.quota_rejected
       << ", \"failover_picks\": " << counters.failover_picks
       << ", \"failover_retries\": " << counters.failover_retries
       << ", \"forced_primary\": " << counters.forced_primary
       << ", \"no_shard_available\": " << counters.no_shard_available
       << ", \"drains\": " << counters.drains
       << ", \"quarantines\": " << counters.quarantines
       << ", \"probes\": " << counters.probes
       << ", \"readmissions\": " << counters.readmissions << "},\n";
  json << "  \"tenants\": [\n" << tenants_json.str() << "  ],\n";
  json << "  \"gates\": {\"abusive_quota_rejected\": "
       << (gate_abusive_rejected ? "true" : "false")
       << ", \"abusive_admission_bounded\": "
       << (gate_abusive_bounded ? "true" : "false")
       << ", \"admit_budget\": " << FormatFixed(admit_budget, 1)
       << ", \"tenant_p99_within_budget\": " << (gate_p99 ? "true" : "false")
       << ", \"tenant_errors_within_budget\": "
       << (gate_errors ? "true" : "false")
       << ", \"shard_quarantined\": " << (gate_quarantine ? "true" : "false")
       << ", \"shard_readmitted\": " << (gate_readmit ? "true" : "false")
       << ", \"zero_failed_swaps\": " << (gate_swaps ? "true" : "false")
       << ", \"pass\": " << (pass ? "true" : "false") << "}\n";
  json << "}\n";

  if (!EnsureParentDir(out)) return 1;
  std::ofstream file(out);
  file << json.str();
  if (!file) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s", json.str().c_str());
  std::printf("wrote %s\n", out.c_str());
  if (!pass) {
    std::fprintf(stderr, "isolation SLO gate FAILED (see gates above)\n");
    return 1;
  }
  std::fprintf(stderr, "isolation SLO gate passed\n");
  return 0;
}

/// Traffic-replay soak (`soak-bench`): a minutes-scale replay of realistic
/// ranking traffic against one Servable-backed engine with a hot score
/// cache, under periodic hot reloads and a mid-soak fault episode.
///
/// Phase A (replay soak): a replay::WorkloadGenerator paces arrivals on the
/// engine's clock — Zipfian query popularity over the corpus, a weighted
/// mix of candidate-set sizes (autocomplete through full-rank, built by
/// tiling the query's rows), a diurnal sine on the arrival rate and random
/// burst episodes. While traffic flows, an orchestrator thread hot-reloads
/// the model bundle through the golden-score gate every --reload-every-ms,
/// substituting a POISONED bundle (a student trained from a different seed)
/// every --poison-every attempts — those must be rejected by the gate,
/// which is the swap-losslessness proof. Between 45% and 60% of the soak
/// the orchestrator swaps in (ungated) a ladder whose top rung injects
/// transient faults, latency spikes and NaNs, then rolls back through the
/// gate: the engine must keep answering via retries / degradation the
/// whole time.
///
/// Phase B (LETOR streaming): the corpus is written as a LETOR file (or
/// --letor supplies a real MSLR/Istella slice) and streamed back
/// query-by-query through data::LetorQueryStream into the serve path —
/// constant memory no matter the file size, zero failures required.
///
/// Phase C (cache parity): the cache is cleared, then every query is served
/// twice on the cached engine and once on a cache-disabled twin loaded from
/// the same bundle. The second serve must be a cache hit and all three
/// score vectors must be bitwise identical — the cache may change latency,
/// never scores.
///
/// Exits 1 unless every gate passes: cache hit rate on the Zipfian phase
/// >= --min-hit-rate, shed rate <= --max-shed-rate, zero internal
/// failures, per-rung p99 <= --max-p99-us, every good reload accepted and
/// every poisoned one rejected, at least one cross-generation stale-entry
/// reject (the invalidation evidence), and bitwise cache parity.
int CmdSoakBench(const Args& args) {
  const auto duration_ms =
      static_cast<uint64_t>(args.GetInt("duration-ms", 10'000));
  const auto features = static_cast<uint32_t>(args.GetInt("features", 32));
  const auto queries = static_cast<uint32_t>(args.GetInt("queries", 48));
  const auto workers = static_cast<uint32_t>(args.GetInt("workers", 4));
  const auto deadline_us =
      static_cast<uint64_t>(args.GetInt("deadline-us", 20'000));
  const auto reload_every_ms =
      static_cast<uint64_t>(args.GetInt("reload-every-ms", 700));
  const int poison_every = args.GetInt("poison-every", 2);
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const double min_hit_rate = args.GetDouble("min-hit-rate", 0.5);
  const double max_shed_rate = args.GetDouble("max-shed-rate", 0.05);
  const double max_p99_us =
      args.GetDouble("max-p99-us", static_cast<double>(deadline_us));
  const std::string out = args.Get("out", "out/soak.json");
  const std::string bundle_path = args.Get("bundle", "out/soak.bundle");
  if (duration_ms < 1000) {
    std::fprintf(stderr, "--duration-ms must be >= 1000\n");
    return 2;
  }

  // ---- Setup: corpus, teacher, student, bundle (the CmdServeBenchReload
  // recipe), plus a poisoned twin whose student comes from a different seed
  // so its scores cannot match the golden probe.
  data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = queries;
  config.num_features = features;
  config.seed = seed;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  std::fprintf(stderr, "corpus: %u docs / %u queries / %u features\n",
               dataset.num_docs(), dataset.num_queries(),
               dataset.num_features());

  gbdt::BoosterConfig bc;
  bc.num_trees = static_cast<uint32_t>(args.GetInt("trees", 20));
  bc.num_leaves = 16;
  gbdt::Booster booster(bc);
  const gbdt::Ensemble teacher = booster.TrainLambdaMart(dataset, nullptr);
  const predict::Architecture student_arch(features, {64, 32});
  const nn::Mlp student(student_arch, seed + 1);
  const nn::Mlp poisoned_student(student_arch, seed + 999);
  data::ZNormalizer normalizer;
  normalizer.Fit(dataset);

  serve::ServableOptions sopt;
  sopt.num_features = features;
  gbdt::Ensemble subset(teacher.base_score());
  const uint32_t subset_trees =
      std::max(1u, teacher.num_trees() / sopt.subset_tree_divisor);
  for (uint32_t t = 0; t < subset_trees; ++t) subset.AddTree(teacher.tree(t));
  const forest::QuickScorer subset_qs(subset, features);
  const nn::NeuralScorer student_scorer(student, &normalizer);
  const double student_cost =
      core::MeasureScorerMicrosPerDocSynthetic(student_scorer, 2048, features);
  const double subset_cost =
      core::MeasureScorerMicrosPerDocSynthetic(subset_qs, 2048, features);
  double costs[3] = {
      student_cost,
      serve::PredictCascadeMicrosPerDoc(subset_cost, student_cost,
                                        sopt.cascade_rescore_fraction),
      subset_cost};
  for (int i = 1; i < 3; ++i) costs[i] = std::min(costs[i], costs[i - 1]);

  bundle::RungConfig rungs;
  rungs.rungs = {{"student", "student", costs[0]},
                 {"cascade", "cascade", costs[1]},
                 {"forest-subset", "teacher-subset", costs[2]}};
  const std::string poison_path = bundle_path + ".poison";
  {
    bundle::ModelBundle pack;
    Status status = pack.SetTeacher(teacher);
    if (status.ok()) status = pack.SetStudent(student);
    if (status.ok()) status = pack.SetNormalizer(normalizer);
    if (status.ok()) status = pack.SetRungs(rungs);
    if (status.ok() && !EnsureParentDir(bundle_path)) return 1;
    if (status.ok()) status = pack.SaveToFile(bundle_path);
    if (status.ok()) status = pack.SetStudent(poisoned_student);
    if (status.ok()) status = pack.SaveToFile(poison_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "packed %s (+ poisoned twin)\n", bundle_path.c_str());

  auto servable = serve::Servable::LoadFromFile(bundle_path, sopt);
  if (!servable.ok()) {
    std::fprintf(stderr, "%s\n", servable.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const serve::Servable> initial(std::move(servable).value());
  auto ladder = serve::Servable::LadderHandle(initial);
  const size_t num_rungs = ladder->num_rungs();

  const float* probe_docs = dataset.Row(dataset.QueryBegin(0));
  const uint32_t probe_count = std::min(dataset.QuerySize(0), 64u);
  auto golden =
      serve::CaptureGoldenScores(*ladder, probe_docs, probe_count, features);
  if (!golden.ok()) {
    std::fprintf(stderr, "%s\n", golden.status().ToString().c_str());
    return 1;
  }

  serve::ScoreCacheConfig cache_config;
  cache_config.capacity =
      static_cast<size_t>(args.GetInt("cache-capacity", 4096));
  cache_config.num_shards =
      static_cast<size_t>(args.GetInt("cache-shards", 8));
  serve::ScoreCache cache(cache_config);

  serve::ServingConfig sc;
  sc.num_workers = workers;
  sc.queue_capacity = static_cast<uint32_t>(args.GetInt("queue", 256));
  sc.score_cache = &cache;
  serve::ServingEngine engine(std::move(ladder), sc);
  const serve::ServingEngine::SwapValidator gate =
      [&](const serve::DegradationLadder& candidate) {
        return serve::RunGoldenSmoke(candidate, probe_docs, probe_count,
                                     features, &*golden);
      };

  // The fault episode's ladder: same rung count as the Servable's, top rung
  // wrapped in an injector throwing transient faults, latency spikes and
  // NaNs. Installed WITHOUT the gate (it could never pass), rolled back
  // through it.
  serve::FaultInjectionConfig fault_config;
  fault_config.transient_fault_probability =
      args.GetDouble("fault-rate", 0.3);
  fault_config.latency_spike_probability = 0.2;
  fault_config.spike_micros = 1000;
  fault_config.non_finite_probability = 0.05;
  fault_config.seed = seed + 777;
  serve::FaultInjectingScorer faulty_top(&student_scorer, fault_config);
  serve::InfallibleScorerAdapter clean_mid(&student_scorer);
  serve::InfallibleScorerAdapter clean_floor(&subset_qs);
  auto faulty_ladder = std::make_shared<serve::DegradationLadder>();
  {
    Status status =
        faulty_ladder->AddRung("student-faulty", &faulty_top, costs[0]);
    if (status.ok()) {
      status = faulty_ladder->AddRung("student-clean", &clean_mid, costs[1]);
    }
    if (status.ok()) {
      status =
          faulty_ladder->AddRung("forest-subset", &clean_floor, costs[2]);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  // ---- Phase A: the replay soak. One driver thread paces arrivals from
  // the workload model; the orchestrator reloads / poisons / faults
  // concurrently.
  replay::WorkloadConfig wc;
  wc.num_queries = dataset.num_queries();
  wc.zipf_exponent = args.GetDouble("zipf-exponent", 1.1);
  wc.base_qps = args.GetDouble("qps", 600.0);
  wc.diurnal_amplitude = args.GetDouble("diurnal-amplitude", 0.5);
  // Default period: the soak covers 1.5 compressed "days", so both the
  // peak and the trough are exercised.
  wc.diurnal_period_micros = static_cast<uint64_t>(args.GetInt(
      "diurnal-period-ms",
      static_cast<int>(duration_ms * 2 / 3))) * 1000;
  wc.burst_probability = args.GetDouble("burst-probability", 0.003);
  wc.burst_multiplier = 3.0;
  wc.burst_duration_micros = 150'000;
  wc.seed = seed;
  replay::WorkloadGenerator workload(wc);

  const uint64_t start_micros = engine.clock().NowMicros();
  const uint64_t soak_end = start_micros + duration_ms * 1000;
  std::atomic<bool> soak_done{false};

  uint64_t good_reloads = 0;
  uint64_t good_reload_failures = 0;
  uint64_t poison_attempts = 0;
  uint64_t poison_rejected = 0;
  uint64_t fault_swap_failures = 0;
  std::thread orchestrator([&] {
    const uint64_t fault_start = start_micros + duration_ms * 1000 * 45 / 100;
    const uint64_t fault_end = start_micros + duration_ms * 1000 * 60 / 100;
    bool fault_active = false;
    bool fault_done = false;
    uint64_t reload_count = 0;
    uint64_t last_reload = start_micros;
    const auto reload_from = [&](const std::string& path,
                                 bool expect_reject) {
      auto candidate = serve::Servable::LoadFromFile(path, sopt);
      if (!candidate.ok()) {
        if (!expect_reject) ++good_reload_failures;
        return;
      }
      const Status swapped = engine.SwapModel(
          serve::Servable::LadderHandle(std::move(candidate).value()), gate);
      if (expect_reject) {
        if (!swapped.ok()) ++poison_rejected;
      } else if (swapped.ok()) {
        ++good_reloads;
      } else {
        std::fprintf(stderr, "swap: %s\n", swapped.ToString().c_str());
        ++good_reload_failures;
      }
    };
    while (!soak_done.load(std::memory_order_relaxed)) {
      const uint64_t now = engine.clock().NowMicros();
      if (!fault_done && !fault_active && now >= fault_start &&
          now < fault_end) {
        std::fprintf(stderr, "fault episode: injecting faulty ladder\n");
        if (engine.SwapModel(faulty_ladder, nullptr).ok()) {
          fault_active = true;
        } else {
          ++fault_swap_failures;
          fault_done = true;
        }
      } else if (fault_active && now >= fault_end) {
        std::fprintf(stderr, "fault episode: rolling back (golden-gated)\n");
        reload_from(bundle_path, /*expect_reject=*/false);
        fault_active = false;
        fault_done = true;
        last_reload = now;
      } else if (!fault_active &&
                 now - last_reload >= reload_every_ms * 1000) {
        ++reload_count;
        const bool poison =
            poison_every > 0 &&
            reload_count % static_cast<uint64_t>(poison_every) == 0;
        if (poison) ++poison_attempts;
        reload_from(poison ? poison_path : bundle_path, poison);
        last_reload = now;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Candidate buffers, memoized per (query, size-class): the class size is
  // met by tiling the query's real rows, so a repeat of the same arrival
  // key is byte-identical — which is exactly what the cache fingerprints.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<float>> buffers;
  const auto candidate_buffer =
      [&](uint32_t q, uint32_t docs) -> const std::vector<float>& {
    const auto key = std::make_pair(q, docs);
    auto it = buffers.find(key);
    if (it != buffers.end()) return it->second;
    std::vector<float> buf(static_cast<size_t>(docs) * features);
    const uint32_t base = dataset.QueryBegin(q);
    const uint32_t size = dataset.QuerySize(q);
    for (uint32_t i = 0; i < docs; ++i) {
      const float* row = dataset.Row(base + (i % size));
      std::copy(row, row + features,
                buf.begin() + static_cast<size_t>(i) * features);
    }
    return buffers.emplace(key, std::move(buf)).first->second;
  };

  std::fprintf(stderr,
               "soak: %llu ms @ ~%.0f qps, reload every %llu ms "
               "(poison every %d), fault episode at 45%%-60%%...\n",
               static_cast<unsigned long long>(duration_ms), wc.base_qps,
               static_cast<unsigned long long>(reload_every_ms),
               poison_every);
  std::vector<std::future<serve::ServeResponse>> inflight;
  std::vector<serve::ServeResponse> responses;
  const size_t window = static_cast<size_t>(workers) * 4;
  uint64_t arrivals_in_burst = 0;
  while (engine.clock().NowMicros() < soak_end) {
    const replay::Arrival arrival = workload.Next();
    replay::SleepUntilDue(engine.clock(), start_micros, arrival);
    if (engine.clock().NowMicros() >= soak_end) break;
    arrivals_in_burst += arrival.in_burst ? 1 : 0;
    const std::vector<float>& docs =
        candidate_buffer(arrival.query, arrival.candidate_docs);
    serve::ServeRequest request;
    request.docs = docs.data();
    request.count = arrival.candidate_docs;
    request.stride = features;
    request.deadline =
        serve::Deadline::AfterMicros(engine.clock(), deadline_us);
    inflight.push_back(engine.Submit(request));
    if (inflight.size() >= window) {
      responses.push_back(inflight.front().get());
      inflight.erase(inflight.begin());
    }
  }
  for (auto& future : inflight) responses.push_back(future.get());
  soak_done.store(true, std::memory_order_relaxed);
  orchestrator.join();

  // One final golden-gated reload so phases B and C run on a generation
  // proven equivalent to the initial one even if the soak ended mid-fault.
  {
    auto candidate = serve::Servable::LoadFromFile(bundle_path, sopt);
    if (!candidate.ok() ||
        !engine
             .SwapModel(serve::Servable::LadderHandle(
                            std::move(candidate).value()),
                        gate)
             .ok()) {
      ++good_reload_failures;
    }
  }

  // Snapshots for the gates, taken before the later phases add traffic.
  const serve::ScoreCacheStats soak_cache = cache.Stats();
  const serve::ServeCountersSnapshot counters = engine.counters().Snapshot();
  const uint64_t submitted = responses.size();
  uint64_t soak_cache_hits = 0;
  std::vector<std::vector<double>> rung_latencies(num_rungs);
  for (const auto& resp : responses) {
    if (!resp.status.ok()) continue;
    if (resp.cache_hit) {
      ++soak_cache_hits;
      continue;  // cache hits are not rung latencies
    }
    if (resp.rung >= 0 && static_cast<size_t>(resp.rung) < num_rungs) {
      rung_latencies[static_cast<size_t>(resp.rung)].push_back(
          static_cast<double>(resp.total_micros));
    }
  }
  const double hit_rate =
      soak_cache.hits + soak_cache.misses > 0
          ? static_cast<double>(soak_cache.hits) /
                static_cast<double>(soak_cache.hits + soak_cache.misses)
          : 0.0;
  const uint64_t shed = counters.shed_queue_full + counters.shed_deadline;
  const double shed_rate =
      submitted > 0
          ? static_cast<double>(shed) / static_cast<double>(submitted)
          : 0.0;

  // ---- Phase B: stream a LETOR file through the serve path.
  std::string letor_path = args.Get("letor", "");
  if (letor_path.empty()) {
    letor_path = "out/soak_corpus.letor";
    if (!EnsureParentDir(letor_path)) return 1;
    const Status written = data::WriteLetorFile(dataset, letor_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  uint64_t letor_queries = 0;
  uint64_t letor_docs = 0;
  uint64_t letor_failures = 0;
  {
    auto stream = data::LetorQueryStream::Open(letor_path, features);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
      return 1;
    }
    data::LetorQueryStream reader = std::move(stream).value();
    data::QueryBatch batch;
    while (true) {
      auto more = reader.Next(&batch);
      if (!more.ok()) {
        std::fprintf(stderr, "letor: %s\n",
                     more.status().ToString().c_str());
        ++letor_failures;
        break;
      }
      if (!more.value()) break;
      if (batch.num_docs == 0) continue;
      const serve::ServeResponse resp = engine.ScoreSync(
          batch.features.data(), batch.num_docs, features, 100'000);
      if (!resp.status.ok()) ++letor_failures;
      ++letor_queries;
      letor_docs += batch.num_docs;
    }
  }
  std::fprintf(stderr, "letor stream: %llu queries / %llu docs from %s\n",
               static_cast<unsigned long long>(letor_queries),
               static_cast<unsigned long long>(letor_docs),
               letor_path.c_str());

  // ---- Phase C: bitwise cache parity. Clear first — soak-era entries may
  // legitimately carry degraded-rung scores; parity is defined against
  // what the current generation computes at full strength.
  cache.Clear();
  uint64_t parity_queries = 0;
  uint64_t parity_mismatches = 0;
  uint64_t parity_missed_hits = 0;
  {
    auto twin_servable = serve::Servable::LoadFromFile(bundle_path, sopt);
    if (!twin_servable.ok()) {
      std::fprintf(stderr, "%s\n",
                   twin_servable.status().ToString().c_str());
      return 1;
    }
    std::shared_ptr<const serve::Servable> twin_model(
        std::move(twin_servable).value());
    serve::ServingConfig twin_config = sc;
    twin_config.score_cache = nullptr;
    serve::ServingEngine twin(serve::Servable::LadderHandle(twin_model),
                              twin_config);
    constexpr uint64_t kParityBudgetUs = 200'000;
    for (uint32_t q = 0; q < dataset.num_queries(); ++q) {
      const float* docs = dataset.Row(dataset.QueryBegin(q));
      const uint32_t count = dataset.QuerySize(q);
      const serve::ServeResponse first =
          engine.ScoreSync(docs, count, features, kParityBudgetUs);
      const serve::ServeResponse second =
          engine.ScoreSync(docs, count, features, kParityBudgetUs);
      const serve::ServeResponse uncached =
          twin.ScoreSync(docs, count, features, kParityBudgetUs);
      ++parity_queries;
      if (!first.status.ok() || !second.status.ok() ||
          !uncached.status.ok()) {
        ++parity_mismatches;
        continue;
      }
      if (!second.cache_hit) ++parity_missed_hits;
      if (first.scores != second.scores || first.scores != uncached.scores) {
        ++parity_mismatches;
      }
    }
    twin.Stop();
  }
  engine.Stop();

  // ---- Gates and report.
  const bool gate_hit_rate = hit_rate >= min_hit_rate;
  const bool gate_shed = shed_rate <= max_shed_rate;
  const bool gate_failures = counters.failed == 0;
  bool gate_p99 = true;
  std::ostringstream rungs_json;
  for (size_t r = 0; r < num_rungs; ++r) {
    const double p50 = serve::Percentile(rung_latencies[r], 50);
    const double p99 = serve::Percentile(rung_latencies[r], 99);
    // Rungs that served a trivial number of requests are reported but not
    // gated: a p99 over <20 samples is noise.
    const bool gated = rung_latencies[r].size() >= 20;
    if (gated && p99 > max_p99_us) gate_p99 = false;
    rungs_json << "    {\"rung\": " << r << ", \"name\": \""
               << engine.ladder().rung(r).name << "\", \"served\": "
               << rung_latencies[r].size()
               << ", \"p50_us\": " << FormatFixed(p50, 1)
               << ", \"p99_us\": " << FormatFixed(p99, 1)
               << ", \"gated\": " << (gated ? "true" : "false") << "}"
               << (r + 1 < num_rungs ? "," : "") << "\n";
  }
  const bool gate_reloads =
      good_reload_failures == 0 && counters.swaps_completed >= 2;
  const bool gate_poison =
      poison_attempts >= 1 && poison_rejected == poison_attempts;
  const bool gate_fault = fault_swap_failures == 0;
  const bool gate_stale = soak_cache.stale_rejects >= 1;
  const bool gate_parity = parity_mismatches == 0 &&
                           parity_missed_hits == 0 && parity_queries >= 1;
  const bool gate_letor = letor_failures == 0 && letor_queries >= 1;
  const bool pass = gate_hit_rate && gate_shed && gate_failures &&
                    gate_p99 && gate_reloads && gate_poison && gate_fault &&
                    gate_stale && gate_parity && gate_letor;

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"soak-bench\",\n";
  json << "  \"config\": {\"duration_ms\": " << duration_ms
       << ", \"qps\": " << FormatFixed(wc.base_qps, 1)
       << ", \"queries\": " << queries << ", \"features\": " << features
       << ", \"workers\": " << workers << ", \"deadline_us\": " << deadline_us
       << ", \"reload_every_ms\": " << reload_every_ms
       << ", \"poison_every\": " << poison_every
       << ", \"zipf_exponent\": " << FormatFixed(wc.zipf_exponent, 2)
       << ", \"diurnal_amplitude\": "
       << FormatFixed(wc.diurnal_amplitude, 2)
       << ", \"burst_probability\": "
       << FormatFixed(wc.burst_probability, 4)
       << ", \"cache_capacity\": " << cache_config.capacity
       << ", \"seed\": " << seed << "},\n";
  json << "  \"soak\": {\"submitted\": " << submitted
       << ", \"ok\": " << counters.ok << ", \"failed\": " << counters.failed
       << ", \"shed_queue_full\": " << counters.shed_queue_full
       << ", \"shed_deadline\": " << counters.shed_deadline
       << ", \"deadline_exceeded\": " << counters.deadline_exceeded
       << ", \"degraded\": " << counters.degraded
       << ", \"shed_rate\": " << FormatFixed(shed_rate, 4)
       << ", \"cache_hit_responses\": " << soak_cache_hits
       << ", \"bursts_started\": " << workload.bursts_started()
       << ", \"arrivals_in_burst\": " << arrivals_in_burst << "},\n";
  json << "  \"cache\": {\"hits\": " << soak_cache.hits
       << ", \"misses\": " << soak_cache.misses
       << ", \"evictions\": " << soak_cache.evictions
       << ", \"stale_rejects\": " << soak_cache.stale_rejects
       << ", \"entries\": " << soak_cache.entries
       << ", \"hit_rate\": " << FormatFixed(hit_rate, 4) << "},\n";
  json << "  \"rungs\": [\n" << rungs_json.str() << "  ],\n";
  json << "  \"swaps\": {\"attempted\": " << counters.swaps_attempted
       << ", \"completed\": " << counters.swaps_completed
       << ", \"rejected\": " << counters.swaps_rejected
       << ", \"good_reloads\": " << good_reloads
       << ", \"good_reload_failures\": " << good_reload_failures
       << ", \"poison_attempts\": " << poison_attempts
       << ", \"poison_rejected\": " << poison_rejected
       << ", \"fault_swap_failures\": " << fault_swap_failures
       << ", \"final_model_version\": " << engine.model_version() << "},\n";
  json << "  \"letor\": {\"path\": \"" << letor_path
       << "\", \"queries\": " << letor_queries
       << ", \"docs\": " << letor_docs
       << ", \"failures\": " << letor_failures << "},\n";
  json << "  \"parity\": {\"queries\": " << parity_queries
       << ", \"mismatches\": " << parity_mismatches
       << ", \"missed_hits\": " << parity_missed_hits << "},\n";
  json << "  \"gates\": {\"cache_hit_rate\": "
       << (gate_hit_rate ? "true" : "false")
       << ", \"shed_rate\": " << (gate_shed ? "true" : "false")
       << ", \"zero_failures\": " << (gate_failures ? "true" : "false")
       << ", \"rung_p99\": " << (gate_p99 ? "true" : "false")
       << ", \"reloads_lossless\": " << (gate_reloads ? "true" : "false")
       << ", \"poison_rejected\": " << (gate_poison ? "true" : "false")
       << ", \"fault_swaps\": " << (gate_fault ? "true" : "false")
       << ", \"stale_rejected\": " << (gate_stale ? "true" : "false")
       << ", \"cache_parity\": " << (gate_parity ? "true" : "false")
       << ", \"letor_stream\": " << (gate_letor ? "true" : "false")
       << ", \"pass\": " << (pass ? "true" : "false") << "}\n";
  json << "}\n";

  if (!EnsureParentDir(out)) return 1;
  std::ofstream file(out);
  file << json.str();
  if (!file) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s", json.str().c_str());
  std::printf("wrote %s\n", out.c_str());
  if (!pass) {
    std::fprintf(stderr, "soak SLO gate FAILED (see gates above)\n");
    return 1;
  }
  std::fprintf(stderr, "soak SLO gate passed\n");
  return 0;
}

/// Load-tests the deadline-aware serving engine over a synthetic corpus and
/// a four-rung degradation ladder (hybrid sparse NN > dense NN > cascade >
/// tree subset), with optional fault injection on the top rung, and writes a
/// latency-percentile + rung-distribution JSON report. With --reload-every N
/// it instead runs the bundle hot-reload load test (see CmdServeBenchReload);
/// with --shards N >= 2 it runs the sharded multi-tenant isolation soak
/// (see CmdServeBenchSharded).
int CmdServeBench(const Args& args) {
  if (args.GetInt("shards", 0) >= 2) return CmdServeBenchSharded(args);
  if (args.GetInt("reload-every", 0) > 0) return CmdServeBenchReload(args);
  const auto features = static_cast<uint32_t>(args.GetInt("features", 136));
  const auto queries = static_cast<uint32_t>(args.GetInt("queries", 80));
  const int requests = args.GetInt("requests", 300);
  const auto deadline_us =
      static_cast<uint64_t>(args.GetInt("deadline-us", 6000));
  const auto workers = static_cast<uint32_t>(args.GetInt("workers", 4));
  const auto threads = static_cast<uint32_t>(args.GetInt("threads", 1));
  const double fault_rate = args.GetDouble("fault-rate", 0.2);
  const double spike_rate = args.GetDouble("spike-rate", 0.1);
  const auto spike_us = static_cast<uint64_t>(args.GetInt("spike-us", 2000));
  const double nan_rate = args.GetDouble("nan-rate", 0.05);
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string out = args.Get("out", "out/serve_latency.json");
  const bool obs_spans = args.GetInt("obs", 0) != 0;
  const std::string obs_out = args.Get("obs-out", "out/obs_stats.json");

  // Synthetic corpus standing in for the ranking candidate sets.
  data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = queries;
  config.num_features = features;
  config.seed = seed;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  std::fprintf(stderr, "corpus: %u docs / %u queries / %u features\n",
               dataset.num_docs(), dataset.num_queries(),
               dataset.num_features());

  // Forest rungs: a small LambdaMART ensemble plus a first-stage-only
  // subset of its trees (the cheapest thing that still ranks).
  gbdt::BoosterConfig bc;
  bc.num_trees = static_cast<uint32_t>(args.GetInt("trees", 40));
  bc.num_leaves = 32;
  std::fprintf(stderr, "training %u-tree forest...\n", bc.num_trees);
  gbdt::Booster booster(bc);
  const gbdt::Ensemble forest_model = booster.TrainLambdaMart(dataset, nullptr);
  gbdt::Ensemble subset(forest_model.base_score());
  const uint32_t subset_trees = std::max(1u, forest_model.num_trees() / 4);
  for (uint32_t t = 0; t < subset_trees; ++t) {
    subset.AddTree(forest_model.tree(t));
  }
  forest::QuickScorer subset_qs(subset, features);

  // Neural rungs with random weights: serving cost, not ranking quality, is
  // what this bench measures, so training would only slow it down.
  const predict::Architecture big_arch(features, {400, 200, 100});
  nn::Mlp big(big_arch, seed);
  nn::WeightMasks masks = prune::MakeDenseMasks(big);
  prune::LevelPruneLayer(&big, 0, 0.98, &masks);
  const predict::Architecture small_arch(features, {64, 32});
  const nn::Mlp small(small_arch, seed + 1);
  data::ZNormalizer normalizer;
  normalizer.Fit(dataset);

  // Intra-request parallelism: every rung shares one pool. Neural rungs
  // chunk whole batches across it (bitwise-identical scores); tree rungs
  // wrap in ParallelEnsembleScorer. `--threads 1` keeps the serial paths.
  common::ThreadPool pool(std::max(1u, threads));
  common::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

  // Budgeted rung costs scale by the machine's MEASURED parallel
  // efficiency, never the naive serial / T; with --threads 1 the scaling
  // struct is the identity. Measured before scorer construction so a
  // machine where threading never pays (crossover == UINT64_MAX, e.g. a
  // single hardware thread) pins every rung to its serial path instead of
  // taxing it.
  predict::ParallelScaling scaling;
  if (threads > 1) {
    scaling = predict::MeasureGemmParallelScaling(pool_ptr);
    std::fprintf(stderr, "parallel scaling: T=%u efficiency %.2f -> %.2fx\n",
                 scaling.num_threads, scaling.efficiency, scaling.Speedup());
  }
  const bool parallel_never_wins = scaling.crossover_flops == UINT64_MAX;

  nn::NeuralScorerConfig nn_config;
  nn_config.pool = pool_ptr;
  if (parallel_never_wins) nn_config.min_parallel_docs = UINT32_MAX;
  nn::HybridNeuralScorer hybrid(big, &normalizer, nn_config);
  nn::NeuralScorer dense_small(small, &normalizer, nn_config);
  core::CascadeScorer cascade(&subset_qs, &dense_small, 0.25);
  const uint32_t tree_crossover = parallel_never_wins ? UINT32_MAX : 0;
  forest::ParallelEnsembleScorer par_cascade(&cascade, pool_ptr, 64,
                                             tree_crossover);
  forest::ParallelEnsembleScorer par_subset(&subset_qs, pool_ptr, 64,
                                            tree_crossover);

  // Rung costs via the paper's analytic predictors (neural rungs) and
  // direct measurement (tree rungs) — the same numbers the engine budgets
  // with online.
  std::fprintf(stderr, "calibrating scoring-time predictors (seconds)...\n");
  predict::DenseCalibrationConfig dcal;
  dcal.m_values = {32, 64, 128, 256, 400};
  dcal.k_values = {32, 64, features, 256, 400};
  dcal.n_values = {16, 64};
  dcal.repeats = 2;
  const auto dense_pred = predict::DenseTimePredictor::Calibrate(dcal);
  const auto sparse_pred = predict::SparseTimePredictor::Calibrate();
  const double subset_cost =
      core::MeasureScorerMicrosPerDocSynthetic(subset_qs, 2048, features);
  const double raw_costs[4] = {
      serve::PredictNeuralRungMicrosPerDoc(
          big_arch, 64, hybrid.first_layer_sparsity(), dense_pred,
          sparse_pred),
      serve::PredictNeuralRungMicrosPerDoc(small_arch, 64, 0.0, dense_pred,
                                           sparse_pred),
      serve::PredictCascadeMicrosPerDoc(
          subset_cost,
          serve::PredictNeuralRungMicrosPerDoc(small_arch, 64, 0.0, dense_pred,
                                               sparse_pred),
          0.25),
      subset_cost};
  // The ladder requires non-increasing costs; predictions on a given
  // machine may cross, so clamp (the JSON reports the raw predictions).
  double costs[4];
  for (int i = 0; i < 4; ++i) {
    costs[i] = i == 0 ? raw_costs[0] : std::min(raw_costs[i], costs[i - 1]);
  }

  serve::FaultInjectionConfig fic;
  fic.transient_fault_probability = fault_rate;
  fic.latency_spike_probability = spike_rate;
  fic.spike_micros = spike_us;
  fic.non_finite_probability = nan_rate;
  fic.seed = seed;
  serve::FaultInjectingScorer faulty_hybrid(&hybrid, fic);
  serve::InfallibleScorerAdapter dense_adapter(&dense_small);
  serve::InfallibleScorerAdapter cascade_adapter(&par_cascade);
  serve::InfallibleScorerAdapter subset_adapter(&par_subset);

  serve::DegradationLadder ladder;
  const serve::FallibleScorer* rung_scorers[4] = {
      &faulty_hybrid, &dense_adapter, &cascade_adapter, &subset_adapter};
  const char* rung_names[4] = {"hybrid-nn", "dense-nn", "cascade",
                               "forest-subset"};
  for (int i = 0; i < 4; ++i) {
    const Status status = ladder.AddRung(rung_names[i], rung_scorers[i],
                                         costs[i], scaling);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "rung %d %-14s %8.3f us/doc (serial %.3f, raw %.3f)\n",
                 i, rung_names[i],
                 ladder.rung(static_cast<size_t>(i)).predicted_us_per_doc,
                 costs[i], raw_costs[i]);
  }

  serve::ServingConfig sc;
  sc.num_workers = workers;
  sc.queue_capacity = static_cast<uint32_t>(args.GetInt("queue", 128));
  serve::ServingEngine engine(&ladder, sc);

  // With --obs 1 the scoring hot-path spans (mm / nn / forest) record too,
  // so the exported registry breaks request latency down by stage. The
  // engine-level histograms (rung totals, queue wait, backoff) always
  // record: they replace the counters a production service would not turn
  // off.
  obs::MetricsRegistry::Global().SetEnabled(obs_spans);

  // Round-robin the queries through the engine with a bounded in-flight
  // window so the queue sees sustained pressure without unbounded shedding.
  std::fprintf(stderr, "serving %d requests (deadline %llu us)...\n", requests,
               static_cast<unsigned long long>(deadline_us));
  std::vector<std::future<serve::ServeResponse>> inflight;
  std::vector<serve::ServeResponse> responses;
  responses.reserve(static_cast<size_t>(requests));
  const size_t window = static_cast<size_t>(workers) * 4;
  for (int r = 0; r < requests; ++r) {
    const uint32_t q = static_cast<uint32_t>(r) % dataset.num_queries();
    serve::ServeRequest request;
    request.docs = dataset.Row(dataset.QueryBegin(q));
    request.count = dataset.QuerySize(q);
    request.stride = dataset.num_features();
    request.deadline =
        serve::Deadline::AfterMicros(engine.clock(), deadline_us);
    inflight.push_back(engine.Submit(request));
    if (inflight.size() >= window) {
      responses.push_back(inflight.front().get());
      inflight.erase(inflight.begin());
    }
  }
  for (auto& future : inflight) responses.push_back(future.get());
  engine.Stop();
  obs::MetricsRegistry::Global().SetEnabled(false);

  const serve::ServeCountersSnapshot counters = engine.counters().Snapshot();
  std::vector<double> ok_latencies;
  uint64_t within_deadline = 0;
  for (const auto& resp : responses) {
    if (!resp.status.ok()) continue;
    ok_latencies.push_back(static_cast<double>(resp.total_micros));
    if (resp.total_micros <= deadline_us) ++within_deadline;
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"serve-bench\",\n";
  json << "  \"config\": {\"requests\": " << requests
       << ", \"deadline_us\": " << deadline_us << ", \"workers\": " << workers
       << ", \"threads\": " << threads << ", \"parallel_efficiency\": "
       << FormatFixed(scaling.efficiency, 3)
       << ", \"queue_capacity\": " << sc.queue_capacity
       << ", \"fault_rate\": " << fault_rate
       << ", \"spike_rate\": " << spike_rate << ", \"spike_us\": " << spike_us
       << ", \"nan_rate\": " << nan_rate << ", \"seed\": " << seed << "},\n";
  // Mean batch size of the round-robined corpus: the request count the
  // predictor drift comparison is evaluated at.
  const uint32_t mean_docs = std::max(
      1u, dataset.num_docs() / std::max(1u, dataset.num_queries()));
  json << "  \"rungs\": [\n";
  for (size_t i = 0; i < ladder.num_rungs(); ++i) {
    // Per-rung latency now comes from the engine's bounded log2 histograms
    // (constant memory under load) instead of the removed unbounded sample
    // recorder; percentile estimates are within 2x of exact.
    const obs::Histogram& rung_hist = engine.rung_latency(i);
    const predict::DriftSample drift = predict::RecordPredictorDrift(
        rung_names[i],
        ladder.PredictedBatchMicros(i, mean_docs, /*safety_factor=*/1.0),
        rung_hist);
    json << "    {\"index\": " << i << ", \"name\": \"" << rung_names[i]
         << "\", \"predicted_us_per_doc\": "
         << FormatFixed(ladder.rung(i).predicted_us_per_doc, 3)
         << ", \"serial_us_per_doc\": " << FormatFixed(costs[i], 3)
         << ", \"raw_predicted_us_per_doc\": " << FormatFixed(raw_costs[i], 3)
         << ", \"served\": " << counters.served_by_rung[i]
         << ", \"p50_us\": "
         << FormatFixed(rung_hist.ApproxPercentileMicros(50), 1)
         << ", \"p95_us\": "
         << FormatFixed(rung_hist.ApproxPercentileMicros(95), 1)
         << ", \"p99_us\": "
         << FormatFixed(rung_hist.ApproxPercentileMicros(99), 1)
         << ", \"mean_us\": " << FormatFixed(rung_hist.MeanMicros(), 1)
         << ", \"predicted_batch_us\": " << FormatFixed(drift.predicted_us, 1)
         << ", \"drift_ratio\": " << FormatFixed(drift.ratio, 3) << "}"
         << (i + 1 < ladder.num_rungs() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"queue\": {\"wait_p50_us\": "
       << FormatFixed(engine.queue_wait().ApproxPercentileMicros(50), 1)
       << ", \"wait_p95_us\": "
       << FormatFixed(engine.queue_wait().ApproxPercentileMicros(95), 1)
       << ", \"wait_max_us\": "
       << FormatFixed(engine.queue_wait().MaxMicros(), 1)
       << ", \"backoff_sleeps\": " << engine.retry_backoff().Count()
       << ", \"backoff_total_us\": "
       << FormatFixed(engine.retry_backoff().SumMicros(), 1) << "},\n";
  json << "  \"obs\": {\"spans_enabled\": " << (obs_spans ? "true" : "false")
       << ", \"stats_file\": \"" << obs_out << "\"},\n";
  json << "  \"overall\": {\"ok\": " << counters.ok
       << ", \"within_deadline\": " << within_deadline
       << ", \"shed_queue_full\": " << counters.shed_queue_full
       << ", \"shed_deadline\": " << counters.shed_deadline
       << ", \"deadline_exceeded\": " << counters.deadline_exceeded
       << ", \"failed\": " << counters.failed
       << ", \"degraded\": " << counters.degraded
       << ", \"retries\": " << counters.retries
       << ", \"transient_faults\": " << counters.transient_faults
       << ", \"timeouts\": " << counters.timeouts
       << ", \"non_finite_batches\": " << counters.non_finite_batches
       << ", \"circuit_opens\": " << counters.circuit_opens
       << ", \"circuit_closes\": " << counters.circuit_closes
       << ", \"p50_us\": " << FormatFixed(serve::Percentile(ok_latencies, 50), 1)
       << ", \"p95_us\": " << FormatFixed(serve::Percentile(ok_latencies, 95), 1)
       << ", \"p99_us\": " << FormatFixed(serve::Percentile(ok_latencies, 99), 1)
       << "}\n";
  json << "}\n";

  if (!EnsureParentDir(out)) return 1;
  std::ofstream file(out);
  file << json.str();
  if (!file) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s", json.str().c_str());
  std::printf("wrote %s\n", out.c_str());

  // Full registry export: engine histograms, drift gauges and (with --obs)
  // the per-stage scoring spans. Checked before writing, so a malformed
  // report can never land on disk.
  const std::string obs_json = obs::MetricsRegistry::Global().ToJson();
  const std::string obs_error = obs::CheckJsonSyntax(obs_json);
  if (!obs_error.empty()) {
    std::fprintf(stderr, "exported stats are not valid JSON: %s\n",
                 obs_error.c_str());
    return 1;
  }
  if (!EnsureParentDir(obs_out)) return 1;
  std::ofstream obs_file(obs_out);
  obs_file << obs_json;
  if (!obs_file) {
    std::fprintf(stderr, "failed to write %s\n", obs_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", obs_out.c_str());
  return 0;
}

/// Measures GEMM GFLOP/s and end-to-end docs/s of the dense-NN, hybrid-NN
/// and tree-ensemble rungs at each requested thread count and writes a
/// scaling JSON report — the multi-core counterpart of the paper's
/// single-core efficiency tables: the same engines, sped up by the shared
/// ThreadPool instead of by shrinking the architecture. With
/// --min-t2-ratio R > 0 the command fails (exit 1) when the dense rung's
/// T=2 throughput drops below R times its T=1 throughput, which is the CI
/// smoke gate against threading regressions.
int CmdBenchScaling(const Args& args) {
  const auto features = static_cast<uint32_t>(args.GetInt("features", 136));
  const auto queries = static_cast<uint32_t>(args.GetInt("queries", 60));
  const double sparsity = args.GetDouble("sparsity", 0.98);
  const auto num_trees = static_cast<uint32_t>(args.GetInt("trees", 40));
  const int repeats = args.GetInt("repeats", 3);
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::vector<uint32_t> thread_counts =
      ParseThreadList(args.Get("threads", "1,2,4"));
  const double min_t2_ratio = args.GetDouble("min-t2-ratio", 0.0);
  const double min_t2_ratio_small = args.GetDouble("min-t2-ratio-small", 0.0);
  const std::string out = args.Get("out", "out/bench_scaling.json");
  const bool obs_spans = args.GetInt("obs", 0) != 0;
  const std::string obs_out = args.Get("obs-out", "out/bench_scaling_obs.json");

  // Named workload presets. "large" is the tuned throughput config (the
  // --queries/--arch/--trees flags apply to it); "small" is a fixed tiny
  // smoke workload whose per-call batches sit near or below the parallel
  // crossover — its gate checks that threading never taxes small batches.
  struct Preset {
    std::string name;
    uint32_t queries = 0;
    uint32_t trees = 0;
    std::string arch;
  };
  std::vector<Preset> presets;
  const std::string configs_flag = args.Get("configs", "large");
  for (const std::string_view piece : SplitAndSkipEmpty(configs_flag, ',')) {
    if (piece == "large") {
      presets.push_back(
          Preset{"large", queries, num_trees, args.Get("arch", "256x128x64")});
    } else if (piece == "small") {
      presets.push_back(Preset{"small", 8, 5, "32x16"});
    } else {
      std::fprintf(stderr, "unknown --configs entry '%.*s' (small|large)\n",
                   static_cast<int>(piece.size()), piece.data());
      return 2;
    }
  }

  struct Row {
    uint32_t threads = 1;
    double gemm_gflops = 0.0;
    double efficiency = 1.0;
    double overhead_us = 0.0;
    uint64_t crossover_flops = 0;
    uint32_t nn_min_parallel_docs = 0;
    double dense_docs_per_s = 0.0;
    double hybrid_docs_per_s = 0.0;
    double tree_docs_per_s = 0.0;
  };
  struct ConfigReport {
    Preset preset;
    uint32_t docs = 0;
    std::vector<Row> rows;
    double t2_ratio = 0.0;     // dense T=2 / T=1 docs/s; 0 when not measured
    double gate_ratio = 0.0;   // required minimum; 0 when no gate applies
    bool gate_pass = true;
  };
  std::vector<ConfigReport> reports;

  // With --obs 1 the GEMM / scorer spans record during the measurement
  // loop, so the report can say where scoring time went (pack vs kernel),
  // not only how fast it was. Off by default: the gate numbers stay
  // uninstrumented unless asked.
  obs::MetricsRegistry::Global().SetEnabled(obs_spans);

  for (const Preset& preset : presets) {
    auto arch = predict::Architecture::Parse(preset.arch, features);
    if (!arch.ok()) {
      std::fprintf(stderr, "%s\n", arch.status().ToString().c_str());
      return 1;
    }

    // Synthetic corpus: throughput, not ranking quality, is what this bench
    // measures, so the neural rungs keep their random initial weights.
    data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
    config.num_queries = preset.queries;
    config.num_features = features;
    config.seed = seed;
    const data::Dataset dataset = data::GenerateSynthetic(config);
    std::fprintf(stderr, "[%s] corpus: %u docs / %u queries / %u features\n",
                 preset.name.c_str(), dataset.num_docs(),
                 dataset.num_queries(), dataset.num_features());

    gbdt::BoosterConfig bc;
    bc.num_trees = preset.trees;
    bc.num_leaves = 32;
    std::fprintf(stderr, "[%s] training %u-tree forest...\n",
                 preset.name.c_str(), bc.num_trees);
    gbdt::Booster booster(bc);
    const gbdt::Ensemble forest_model =
        booster.TrainLambdaMart(dataset, nullptr);
    forest::QuickScorer tree_scorer(forest_model, features);

    nn::Mlp dense_mlp(*arch, seed);
    nn::Mlp hybrid_mlp(*arch, seed + 1);
    nn::WeightMasks masks = prune::MakeDenseMasks(hybrid_mlp);
    prune::LevelPruneLayer(&hybrid_mlp, 0, sparsity, &masks);
    data::ZNormalizer normalizer;
    normalizer.Fit(dataset);

    ConfigReport report;
    report.preset = preset;
    report.docs = dataset.num_docs();

    // Serial per-doc costs from the T=1 row feed CrossoverDocs for the
    // T>1 rows, so the crossover the bench applies is the one a production
    // caller would compute from the same measurements.
    double dense_serial_us = 0.0;
    double hybrid_serial_us = 0.0;
    double tree_serial_us = 0.0;

    for (const uint32_t t : thread_counts) {
      common::ThreadPool pool(t);
      common::ThreadPool* pool_ptr = t > 1 ? &pool : nullptr;

      Row row;
      row.threads = t;

      uint32_t nn_crossover = 0;
      uint32_t tree_crossover = 0;
      mm::GemmParams gemm_params;
      if (t > 1) {
        const predict::ParallelScaling scaling =
            predict::MeasureGemmParallelScaling(pool_ptr, 256, 256, 512,
                                                repeats);
        row.efficiency = scaling.efficiency;
        row.overhead_us = scaling.overhead_us;
        row.crossover_flops = scaling.crossover_flops;
        // Each engine gates on its own serial cost; without a T=1 baseline
        // (a --threads list omitting 1) the structural defaults stand.
        if (dense_serial_us > 0.0) {
          nn_crossover = scaling.CrossoverDocs(dense_serial_us);
        }
        if (tree_serial_us > 0.0) {
          tree_crossover = scaling.CrossoverDocs(tree_serial_us);
        }
        gemm_params.min_parallel_flops = scaling.crossover_flops;
      }
      row.gemm_gflops = mm::MeasureGemmGflopsWithParams(gemm_params, 256, 256,
                                                        64, repeats, 99,
                                                        pool_ptr);

      nn::NeuralScorerConfig nn_config;
      nn_config.pool = pool_ptr;
      nn_config.min_parallel_docs =
          std::max(nn_config.min_parallel_docs, nn_crossover);
      row.nn_min_parallel_docs = nn_config.min_parallel_docs;
      const nn::NeuralScorer dense(dense_mlp, &normalizer, nn_config);
      const nn::HybridNeuralScorer hybrid(hybrid_mlp, &normalizer, nn_config);
      const forest::ParallelEnsembleScorer tree(&tree_scorer, pool_ptr, 64,
                                                tree_crossover);

      const double dense_us =
          core::MeasureScorerMicrosPerDoc(dense, dataset, repeats);
      const double hybrid_us =
          core::MeasureScorerMicrosPerDoc(hybrid, dataset, repeats);
      const double tree_us =
          core::MeasureScorerMicrosPerDoc(tree, dataset, repeats);
      if (t == 1) {
        dense_serial_us = dense_us;
        hybrid_serial_us = hybrid_us;
        tree_serial_us = tree_us;
      }
      row.dense_docs_per_s = 1e6 / dense_us;
      row.hybrid_docs_per_s = 1e6 / hybrid_us;
      row.tree_docs_per_s = 1e6 / tree_us;
      report.rows.push_back(row);
      std::fprintf(stderr,
                   "[%s] T=%u  gemm %7.2f GFLOP/s  dense %9.0f  "
                   "hybrid %9.0f  tree %9.0f docs/s\n",
                   preset.name.c_str(), t, row.gemm_gflops,
                   row.dense_docs_per_s, row.hybrid_docs_per_s,
                   row.tree_docs_per_s);
    }
    // hybrid_serial_us only feeds the T=1 log line today; keep measuring it
    // so the serial baseline triple stays complete in the JSON.
    (void)hybrid_serial_us;
    reports.push_back(std::move(report));
  }

  // Per-config T=2 / T=1 ratios and gates. "small" answers to
  // --min-t2-ratio-small (the no-regression bound); every other config
  // answers to --min-t2-ratio (the must-scale bound).
  bool gates_pass = true;
  for (ConfigReport& report : reports) {
    const Row* t1 = nullptr;
    const Row* t2 = nullptr;
    for (const Row& row : report.rows) {
      if (row.threads == 1 && t1 == nullptr) t1 = &row;
      if (row.threads == 2 && t2 == nullptr) t2 = &row;
    }
    if (t1 != nullptr && t2 != nullptr && t1->dense_docs_per_s > 0.0) {
      report.t2_ratio = t2->dense_docs_per_s / t1->dense_docs_per_s;
    }
    report.gate_ratio =
        report.preset.name == "small" ? min_t2_ratio_small : min_t2_ratio;
    if (report.gate_ratio <= 0.0) continue;
    if (t1 == nullptr || t2 == nullptr) {
      std::fprintf(stderr,
                   "[%s] gate needs both 1 and 2 in --threads\n",
                   report.preset.name.c_str());
      report.gate_pass = false;
      gates_pass = false;
      continue;
    }
    report.gate_pass = report.t2_ratio >= report.gate_ratio;
    if (!report.gate_pass) gates_pass = false;
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"bench-scaling\",\n";
  json << "  \"hardware_threads\": " << common::ThreadPool::HardwareThreads()
       << ",\n";
  json << "  \"configs\": [\n";
  for (size_t c = 0; c < reports.size(); ++c) {
    const ConfigReport& report = reports[c];
    const Row* t1 = nullptr;
    for (const Row& row : report.rows) {
      if (row.threads == 1) {
        t1 = &row;
        break;
      }
    }
    const Row& base = t1 != nullptr ? *t1 : report.rows.front();
    json << "    {\"name\": \"" << report.preset.name << "\",\n";
    json << "     \"config\": {\"features\": " << features
         << ", \"queries\": " << report.preset.queries
         << ", \"docs\": " << report.docs << ", \"arch\": \""
         << report.preset.arch << "\", \"sparsity\": "
         << FormatFixed(sparsity, 3) << ", \"trees\": " << report.preset.trees
         << ", \"repeats\": " << repeats << ", \"seed\": " << seed << "},\n";
    json << "     \"results\": [\n";
    for (size_t i = 0; i < report.rows.size(); ++i) {
      const Row& row = report.rows[i];
      // UINT64_MAX crossover means "parallelism never wins on this machine";
      // -1 keeps that readable where a 20-digit sentinel would not be.
      const bool never = row.crossover_flops == UINT64_MAX;
      json << "       {\"threads\": " << row.threads
           << ", \"gemm_gflops\": " << FormatFixed(row.gemm_gflops, 3)
           << ", \"parallel_efficiency\": " << FormatFixed(row.efficiency, 3)
           << ", \"overhead_us\": " << FormatFixed(row.overhead_us, 2)
           << ", \"crossover_flops\": "
           << (never ? std::string("-1")
                     : std::to_string(row.crossover_flops))
           << ", \"nn_min_parallel_docs\": "
           << (row.nn_min_parallel_docs == UINT32_MAX
                   ? std::string("-1")
                   : std::to_string(row.nn_min_parallel_docs))
           << ", \"dense_docs_per_s\": "
           << FormatFixed(row.dense_docs_per_s, 1)
           << ", \"dense_speedup\": "
           << FormatFixed(row.dense_docs_per_s / base.dense_docs_per_s, 3)
           << ", \"hybrid_docs_per_s\": "
           << FormatFixed(row.hybrid_docs_per_s, 1)
           << ", \"hybrid_speedup\": "
           << FormatFixed(row.hybrid_docs_per_s / base.hybrid_docs_per_s, 3)
           << ", \"tree_docs_per_s\": " << FormatFixed(row.tree_docs_per_s, 1)
           << ", \"tree_speedup\": "
           << FormatFixed(row.tree_docs_per_s / base.tree_docs_per_s, 3)
           << "}" << (i + 1 < report.rows.size() ? "," : "") << "\n";
    }
    json << "     ]";
    if (report.gate_ratio > 0.0) {
      json << ",\n     \"gate\": {\"min_t2_ratio\": "
           << FormatFixed(report.gate_ratio, 3)
           << ", \"t2_ratio\": " << FormatFixed(report.t2_ratio, 3)
           << ", \"pass\": " << (report.gate_pass ? "true" : "false") << "}";
    }
    json << "}" << (c + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ]";
  if (obs_spans) {
    obs::MetricsRegistry::Global().SetEnabled(false);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    const double kernel_us =
        registry.GetHistogram("mm.gemm.kernel_us").SumMicros();
    const double pack_us =
        registry.GetHistogram("mm.gemm.pack_a_us").SumMicros() +
        registry.GetHistogram("mm.gemm.pack_b_us").SumMicros();
    const double gemm_us =
        registry.GetHistogram("mm.gemm.total_us").SumMicros();
    json << ",\n  \"obs\": {\"gemm_calls\": "
         << registry.GetCounter("mm.gemm.calls").Value()
         << ", \"gemm_total_us\": " << FormatFixed(gemm_us, 1)
         << ", \"gemm_kernel_us\": " << FormatFixed(kernel_us, 1)
         << ", \"gemm_pack_us\": " << FormatFixed(pack_us, 1)
         << ", \"gemm_pack_share\": "
         << FormatFixed(gemm_us > 0.0 ? pack_us / gemm_us : 0.0, 3)
         << ", \"stats_file\": \"" << obs_out << "\"}";
  }
  json << "\n}\n";

  if (!EnsureParentDir(out)) return 1;
  std::ofstream file(out);
  file << json.str();
  if (!file) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s", json.str().c_str());
  std::printf("wrote %s\n", out.c_str());

  if (obs_spans) {
    const std::string obs_json = obs::MetricsRegistry::Global().ToJson();
    const std::string obs_error = obs::CheckJsonSyntax(obs_json);
    if (!obs_error.empty()) {
      std::fprintf(stderr, "exported stats are not valid JSON: %s\n",
                   obs_error.c_str());
      return 1;
    }
    if (!EnsureParentDir(obs_out)) return 1;
    std::ofstream obs_file(obs_out);
    obs_file << obs_json;
    if (!obs_file) {
      std::fprintf(stderr, "failed to write %s\n", obs_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", obs_out.c_str());
  }

  for (const ConfigReport& report : reports) {
    if (report.gate_ratio <= 0.0) continue;
    if (!report.gate_pass) {
      std::fprintf(stderr,
                   "FAIL [%s]: dense rung T=2/T=1 throughput ratio "
                   "%.3f < %.3f\n",
                   report.preset.name.c_str(), report.t2_ratio,
                   report.gate_ratio);
    } else {
      std::printf("scaling gate ok [%s]: dense T=2/T=1 ratio %.3f >= %.3f\n",
                  report.preset.name.c_str(), report.t2_ratio,
                  report.gate_ratio);
    }
  }
  return gates_pass ? 0 : 1;
}

/// Exercises the instrumented scoring stack (dense NN, hybrid NN, tree
/// ensemble over a synthetic corpus) with spans enabled and exports the
/// metrics registry as JSON. Doubles as the CI entry point for the layer's
/// two guarantees:
///   --check 1              scores with spans on must be bitwise identical
///                          to scores with spans off (exit 1 otherwise);
///   --max-overhead-pct X   enabled spans may slow the GEMM microbench by
///                          at most X percent (best-of-trials on both
///                          sides, so scheduler noise cannot fail the gate
///                          spuriously).
/// With --in F it instead validates an exported report file and prints it.
int CmdStats(const Args& args) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  if (args.Has("in")) {
    const std::string path = args.Get("in", "");
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string error = obs::CheckJsonSyntax(buffer.str());
    if (!error.empty()) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("%s", buffer.str().c_str());
    std::fprintf(stderr, "%s: valid JSON\n", path.c_str());
    return 0;
  }

  const auto features = static_cast<uint32_t>(args.GetInt("features", 64));
  const auto queries = static_cast<uint32_t>(args.GetInt("queries", 24));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const bool check = args.GetInt("check", 0) != 0;
  const double max_overhead_pct = args.GetDouble("max-overhead-pct", 0.0);
  const int trials = args.GetInt("trials", 3);
  const std::string out = args.Get("out", "-");

  data::SyntheticConfig config = data::SyntheticConfig::MsnLike(1.0);
  config.num_queries = queries;
  config.num_features = features;
  config.seed = seed;
  const data::Dataset dataset = data::GenerateSynthetic(config);

  // One scorer per instrumented subsystem: the dense MLP drives the GEMM
  // spans, the hybrid MLP the sparse first-layer split, the QuickScorer
  // pair the forest traversal spans. Random weights: this command measures
  // plumbing, not ranking quality.
  gbdt::BoosterConfig bc;
  bc.num_trees = 10;
  bc.num_leaves = 16;
  gbdt::Booster booster(bc);
  const gbdt::Ensemble forest_model = booster.TrainLambdaMart(dataset, nullptr);
  const forest::QuickScorer qs(forest_model, dataset.num_features());
  const forest::BlockwiseQuickScorer bwqs(forest_model, dataset.num_features());
  const predict::Architecture arch(dataset.num_features(), {128, 64});
  nn::Mlp dense_mlp(arch, seed);
  nn::Mlp hybrid_mlp(arch, seed + 1);
  nn::WeightMasks masks = prune::MakeDenseMasks(hybrid_mlp);
  prune::LevelPruneLayer(&hybrid_mlp, 0, 0.95, &masks);
  data::ZNormalizer normalizer;
  normalizer.Fit(dataset);
  const nn::NeuralScorer dense(dense_mlp, &normalizer);
  const nn::HybridNeuralScorer hybrid(hybrid_mlp, &normalizer);

  const forest::DocumentScorer* scorers[] = {&dense, &hybrid, &qs, &bwqs};
  int failures = 0;

  if (check) {
    for (const forest::DocumentScorer* scorer : scorers) {
      registry.SetEnabled(false);
      const std::vector<float> off = scorer->ScoreDataset(dataset);
      registry.SetEnabled(true);
      const std::vector<float> on = scorer->ScoreDataset(dataset);
      registry.SetEnabled(false);
      const bool identical =
          off.size() == on.size() &&
          std::memcmp(off.data(), on.data(), off.size() * sizeof(float)) == 0;
      std::printf("check %-24s %s\n",
                  std::string(scorer->name()).c_str(),
                  identical ? "bitwise identical" : "MISMATCH");
      if (!identical) ++failures;
    }
  }

  if (max_overhead_pct > 0.0) {
    // GFLOPS is best-of-repeats, i.e. min time; taking the best across
    // trials on both sides compares two near-noise-free minima.
    double off_gflops = 0.0;
    double on_gflops = 0.0;
    for (int trial = 0; trial < std::max(1, trials); ++trial) {
      registry.SetEnabled(false);
      off_gflops = std::max(off_gflops, mm::MeasureGemmGflops(256, 256, 64, 5));
      registry.SetEnabled(true);
      on_gflops = std::max(on_gflops, mm::MeasureGemmGflops(256, 256, 64, 5));
    }
    registry.SetEnabled(false);
    const double overhead_pct = (off_gflops / on_gflops - 1.0) * 100.0;
    registry.GetGauge("obs.gemm_overhead_pct").Set(overhead_pct);
    const bool ok = overhead_pct <= max_overhead_pct;
    std::printf("gemm span overhead %.2f%% (gate %.2f%%): %s\n", overhead_pct,
                max_overhead_pct, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }

  // The exported workload: a few instrumented passes so every per-stage
  // histogram has samples.
  registry.SetEnabled(true);
  for (int pass = 0; pass < 3; ++pass) {
    for (const forest::DocumentScorer* scorer : scorers) {
      scorer->ScoreDataset(dataset);
    }
  }
  registry.SetEnabled(false);

  const std::string json = registry.ToJson();
  const std::string error = obs::CheckJsonSyntax(json);
  if (!error.empty()) {
    std::fprintf(stderr, "exported stats are not valid JSON: %s\n",
                 error.c_str());
    return 1;
  }
  if (out == "-") {
    std::printf("%s", json.c_str());
  } else {
    if (!EnsureParentDir(out)) return 1;
    std::ofstream file(out);
    file << json;
    if (!file) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return failures == 0 ? 0 : 1;
}

/// Prints a validation report with a `what: ` prefix; returns true when the
/// report has no errors (warnings are printed but do not fail).
bool PrintReport(const char* what, const dnlr::validate::Report& report) {
  std::printf("%s: %s\n", what, report.ToString().c_str());
  return report.ok();
}

int CmdValidate(const Args& args) {
  if (!args.Has("model") && !args.Has("data")) {
    std::fprintf(stderr, "validate needs --model and/or --data\n");
    return 2;
  }
  const uint32_t features =
      static_cast<uint32_t>(args.GetInt("features", 0));
  bool ok = true;

  if (args.Has("model")) {
    const std::string path = args.Get("model", "");
    std::ifstream probe(path);
    std::string first_word;
    if (!probe || !(probe >> first_word)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    if (first_word == "ensemble") {
      auto model = gbdt::Ensemble::LoadFromFile(path);
      if (!model.ok()) {
        std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
        return 1;
      }
      validate::Report report;
      gbdt::ValidateEnsemble(*model, features,
                             validate::Checker(&report, "ensemble"));
      ok = PrintReport("ensemble", report) && ok;
      // QuickScorer eligibility is informational: wide/naive engines accept
      // ensembles the single-word QuickScorer cannot handle.
      validate::Report qs_report;
      forest::ValidateForQuickScorer(*model, features, /*max_leaves=*/64,
                                     validate::Checker(&qs_report, "ensemble"));
      std::printf("quickscorer-eligible: %s\n",
                  qs_report.ok() ? "yes" : qs_report.ToString().c_str());
    } else if (first_word == "mlp") {
      auto model = nn::Mlp::LoadFromFile(path);
      if (!model.ok()) {
        std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
        return 1;
      }
      validate::Report report;
      nn::ValidateMlp(*model, validate::Checker(&report, "mlp"));
      ok = PrintReport("mlp", report) && ok;
    } else {
      std::fprintf(stderr, "unrecognized model file %s (starts with '%s')\n",
                   path.c_str(), first_word.c_str());
      return 1;
    }
  }

  if (args.Has("data")) {
    auto dataset = data::ReadLetorFile(args.Get("data", ""));
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    validate::Report report;
    data::ValidateDataset(
        *dataset, validate::Checker(&report, "dataset"),
        static_cast<float>(args.GetDouble("max-label", 4.0)));
    ok = PrintReport("dataset", report) && ok;
  }

  return ok ? 0 : 1;
}

/// Parses a --rungs spec "name:kind:us_per_doc,..." (kinds: student,
/// teacher, cascade, teacher-subset; costs non-increasing). Exits on junk
/// shape; semantic validation happens in RungConfig::Serialize.
bundle::RungConfig ParseRungSpec(const std::string& csv) {
  bundle::RungConfig config;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const size_t first = item.find(':');
    const size_t second = first == std::string::npos
                              ? std::string::npos
                              : item.find(':', first + 1);
    if (second == std::string::npos) {
      std::fprintf(stderr, "bad rung '%s' in --rungs (want name:kind:us)\n",
                   item.c_str());
      std::exit(2);
    }
    bundle::RungSpec spec;
    spec.name = item.substr(0, first);
    spec.kind = item.substr(first + 1, second - first - 1);
    spec.us_per_doc = std::atof(item.c_str() + second + 1);
    config.rungs.push_back(std::move(spec));
  }
  if (config.rungs.empty()) {
    std::fprintf(stderr, "--rungs spec is empty\n");
    std::exit(2);
  }
  return config;
}

/// bundle pack: collects a teacher ensemble, a student MLP, normalizer
/// statistics (fitted on --norm-data) and a rung configuration into one
/// checksummed bundle file, written crash-safely. --binary 1 writes the v2
/// binary (mmap-able) container instead of v1 text; --in seeds the pack
/// from an existing bundle of either format, so
/// `bundle pack --in text.bundle --out fast.bundle --binary 1` converts.
int CmdBundlePack(const Args& args) {
  const std::string out = args.Require("out");
  const bool binary = args.GetInt("binary", 0) != 0;
  bundle::ModelBundle pack;

  if (args.Has("in")) {
    auto loaded = bundle::ModelBundle::LoadFromFile(args.Get("in", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    pack = std::move(loaded).value();
  }
  if (args.Has("teacher")) {
    auto teacher = gbdt::Ensemble::LoadFromFile(args.Get("teacher", ""));
    if (!teacher.ok()) {
      std::fprintf(stderr, "%s\n", teacher.status().ToString().c_str());
      return 1;
    }
    const Status status = pack.SetTeacher(*teacher);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (args.Has("student")) {
    auto student = nn::Mlp::LoadFromFile(args.Get("student", ""));
    if (!student.ok()) {
      std::fprintf(stderr, "%s\n", student.status().ToString().c_str());
      return 1;
    }
    const Status status = pack.SetStudent(*student);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (args.Has("norm-data")) {
    const data::Dataset dataset = LoadLetorOrDie(args.Get("norm-data", ""));
    data::ZNormalizer normalizer;
    normalizer.Fit(dataset);
    const Status status = pack.SetNormalizer(normalizer);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (args.Has("rungs")) {
    const Status status = pack.SetRungs(ParseRungSpec(args.Get("rungs", "")));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (pack.sections().empty()) {
    std::fprintf(stderr,
                 "nothing to pack: give --in / --teacher / --student / "
                 "--norm-data / --rungs\n");
    return 2;
  }

  if (!EnsureParentDir(out)) return 1;
  // SaveToFile(path, format) pairs the payload codecs with the container
  // (text payloads in a text container, binary in binary), converting
  // whatever --in provided.
  const Status status = pack.SaveToFile(
      out, binary ? bundle::BundleFormat::kBinary : bundle::BundleFormat::kText);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("packed %zu section(s) into %s (%s)\n", pack.sections().size(),
              out.c_str(), binary ? "binary" : "text");
  for (const bundle::Section& section : pack.sections()) {
    std::printf("  %-10s %zu bytes\n", section.name.c_str(),
                section.payload.size());
  }
  return 0;
}

/// bundle unpack: verifies a bundle and writes each section back out as the
/// standalone per-model text file it was packed from (crash-safely, so an
/// interrupted unpack never leaves torn model files either).
int CmdBundleUnpack(const Args& args) {
  const std::string in = args.Require("in");
  const std::string dir = args.Get("out-dir", ".");
  auto loaded = bundle::ModelBundle::LoadFromFile(in);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  if (loaded->sections().empty()) {
    std::fprintf(stderr, "%s: bundle has no sections\n", in.c_str());
    return 1;
  }
  // Normalize to the text codecs first so a binary bundle unpacks to the
  // same standalone .txt model files a text bundle does (the conversion is
  // bitwise score-lossless).
  auto text_bytes = loaded->SerializeAs(bundle::BundleFormat::kText);
  if (!text_bytes.ok()) {
    std::fprintf(stderr, "%s\n", text_bytes.status().ToString().c_str());
    return 1;
  }
  loaded = bundle::ModelBundle::Deserialize(*text_bytes);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  for (const bundle::Section& section : loaded->sections()) {
    const std::string path =
        (std::filesystem::path(dir) / (section.name + ".txt")).string();
    if (!EnsureParentDir(path)) return 1;
    const Status status = AtomicWriteFile(path, section.payload);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(),
                section.payload.size());
  }
  return 0;
}

/// bundle verify: structural check (magic, version, section order, lengths,
/// CRC32s) plus a full parse and deep validation of every section it can
/// type — the CI gate proving a packed artifact is servable. Handles both
/// container formats; for a binary bundle it additionally exercises the
/// mmap path (MappedBundle layout validation + the deferred payload-CRC
/// pass serving skips).
int CmdBundleVerify(const Args& args) {
  const std::string in = args.Require("in");
  const auto features = static_cast<uint32_t>(args.GetInt("features", 0));
  auto raw = ReadFileToString(in);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s: %s\n", in.c_str(),
                 raw.status().ToString().c_str());
    return 1;
  }
  const bool binary = bundle::IsBinaryBundle(*raw);
  if (binary) {
    auto mapped = bundle::MappedBundle::Map(in);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s: mmap path: %s\n", in.c_str(),
                   mapped.status().ToString().c_str());
      return 1;
    }
    const Status crcs = mapped->VerifyPayloadCrcs();
    if (!crcs.ok()) {
      std::fprintf(stderr, "%s: mmap path: %s\n", in.c_str(),
                   crcs.ToString().c_str());
      return 1;
    }
    std::printf("mmap: %s, %zu bytes, payload crcs ok\n",
                mapped->is_mapped() ? "mapped" : "read fallback",
                mapped->file_bytes());
  }
  auto loaded = bundle::ModelBundle::Deserialize(*raw);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: %s\n", in.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  bool ok = true;
  for (const bundle::Section& section : loaded->sections()) {
    std::string verdict = "ok";
    if (section.name == bundle::kTeacherSection) {
      auto teacher = loaded->Teacher();
      if (teacher.ok()) {
        validate::Report report;
        gbdt::ValidateEnsemble(*teacher, features,
                               validate::Checker(&report, "teacher"));
        if (!report.ok()) verdict = report.ToString();
      } else {
        verdict = teacher.status().ToString();
      }
    } else if (section.name == bundle::kStudentSection) {
      auto student = loaded->Student();
      if (student.ok()) {
        validate::Report report;
        nn::ValidateMlp(*student, validate::Checker(&report, "student"));
        if (!report.ok()) verdict = report.ToString();
      } else {
        verdict = student.status().ToString();
      }
    } else if (section.name == bundle::kNormalizerSection) {
      auto normalizer = loaded->Normalizer();
      if (!normalizer.ok()) verdict = normalizer.status().ToString();
    } else if (section.name == bundle::kRungsSection) {
      auto rungs = loaded->Rungs();
      if (!rungs.ok()) verdict = rungs.status().ToString();
    } else {
      verdict = "unknown section";
    }
    std::printf("%-10s %8zu bytes  %s\n", section.name.c_str(),
                section.payload.size(), verdict.c_str());
    if (verdict != "ok") ok = false;
  }
  std::printf("%s: %s (%s, %zu section(s))\n", in.c_str(),
              ok ? "bundle ok" : "bundle INVALID", binary ? "binary" : "text",
              loaded->sections().size());
  return ok ? 0 : 1;
}

/// Random tree for `bundle bench` (same construction as the bundle tests:
/// structure training rarely makes, but valid by the ensemble invariants).
gbdt::RegressionTree BenchRandomTree(Rng& rng, uint32_t leaves,
                                     uint32_t num_features) {
  if (leaves == 1) {
    return gbdt::RegressionTree({}, {rng.Normal()});
  }
  std::vector<gbdt::TreeNode> nodes;
  std::vector<double> values;
  std::function<int32_t(uint32_t)> build = [&](uint32_t budget) -> int32_t {
    if (budget == 1) {
      values.push_back(rng.Normal());
      return gbdt::TreeNode::EncodeLeaf(
          static_cast<uint32_t>(values.size() - 1));
    }
    const uint32_t left_budget =
        1 + static_cast<uint32_t>(rng.Below(budget - 1));
    const auto index = static_cast<int32_t>(nodes.size());
    nodes.push_back({});
    nodes[index].feature = static_cast<uint32_t>(rng.Below(num_features));
    nodes[index].threshold = static_cast<float>(rng.Normal(0.0, 2.0));
    const int32_t left = build(left_budget);
    nodes[index].left = left;
    const int32_t right = build(budget - left_budget);
    nodes[index].right = right;
    return index;
  };
  build(leaves);
  gbdt::RegressionTree tree(std::move(nodes), std::move(values));
  tree.NormalizeLeafOrder();
  return tree;
}

/// bundle bench: packs one randomly initialized model family as both a v1
/// text bundle and a v2 binary bundle, measures cold bundle-load +
/// model-materialization time for each (text: read + parse; binary: mmap +
/// bounds-checked memcpy decode; best of --iters), and proves the two
/// loads materialize bitwise-identical models by comparing their canonical
/// text serializations. --min-speedup gates the binary/text load-time
/// ratio — the CI evidence for the binary format's load-time claim.
int CmdBundleBench(const Args& args) {
  const auto features = static_cast<uint32_t>(args.GetInt("features", 136));
  const auto trees = static_cast<uint32_t>(args.GetInt("trees", 300));
  const auto leaves = static_cast<uint32_t>(args.GetInt("leaves", 64));
  const std::string arch_spec = args.Get("arch", "512x256x128");
  const int iters = std::max(1, args.GetInt("iters", 7));
  const double min_speedup = args.GetDouble("min-speedup", 0.0);
  const std::string dir = args.Get("dir", "out");
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  Rng rng(seed);
  gbdt::Ensemble teacher(rng.Normal());
  for (uint32_t t = 0; t < trees; ++t) {
    const auto tree_leaves = 1 + static_cast<uint32_t>(rng.Below(leaves));
    teacher.AddTree(BenchRandomTree(rng, tree_leaves, features));
  }
  auto arch = predict::Architecture::Parse(arch_spec, features);
  if (!arch.ok()) {
    std::fprintf(stderr, "%s\n", arch.status().ToString().c_str());
    return 1;
  }
  const nn::Mlp student(*arch, seed + 1);
  std::vector<float> mean(features);
  std::vector<float> stddev(features);
  for (uint32_t f = 0; f < features; ++f) {
    mean[f] = static_cast<float>(rng.Normal());
    stddev[f] = static_cast<float>(0.5 + rng.Uniform());
  }
  const data::ZNormalizer normalizer(std::move(mean), std::move(stddev));
  bundle::RungConfig rungs;
  rungs.rungs = {{"student", "student", 3.0},
                 {"cascade", "cascade", 2.0},
                 {"forest-subset", "teacher-subset", 1.0}};

  bundle::ModelBundle pack;
  Status status = pack.SetTeacher(teacher);
  if (status.ok()) status = pack.SetStudent(student);
  if (status.ok()) status = pack.SetNormalizer(normalizer);
  if (status.ok()) status = pack.SetRungs(rungs);
  const std::string text_path =
      (std::filesystem::path(dir) / "bundle_bench_text.dnlr").string();
  const std::string binary_path =
      (std::filesystem::path(dir) / "bundle_bench_binary.dnlr").string();
  if (status.ok() && !EnsureParentDir(text_path)) return 1;
  if (status.ok()) {
    status = pack.SaveToFile(text_path, bundle::BundleFormat::kText);
  }
  if (status.ok()) {
    status = pack.SaveToFile(binary_path, bundle::BundleFormat::kBinary);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Canonical text serializations of every model materialized on the first
  // iteration of each path; equal strings = bitwise-equal parameters (the
  // text codecs print max_digits10).
  std::string text_fingerprint;
  std::string binary_fingerprint;
  const auto fingerprint =
      [](const gbdt::Ensemble& t, const nn::Mlp& s,
         const data::ZNormalizer& n,
         const bundle::RungConfig& r) -> Result<std::string> {
    auto ts = t.Serialize();
    if (!ts.ok()) return ts.status();
    auto ss = s.Serialize();
    if (!ss.ok()) return ss.status();
    auto ns = bundle::SerializeNormalizer(n);
    if (!ns.ok()) return ns.status();
    auto rs = r.Serialize();
    if (!rs.ok()) return rs.status();
    return *ts + *ss + *ns + *rs;
  };

  double text_us = std::numeric_limits<double>::infinity();
  double binary_us = std::numeric_limits<double>::infinity();
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < iters; ++i) {
    const auto start = Clock::now();
    auto loaded = bundle::ModelBundle::LoadFromFile(text_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    auto lt = loaded->Teacher();
    auto ls = loaded->Student();
    auto ln = loaded->Normalizer();
    auto lr = loaded->Rungs();
    if (!lt.ok() || !ls.ok() || !ln.ok() || !lr.ok()) {
      std::fprintf(stderr, "text load failed to materialize a model\n");
      return 1;
    }
    const auto elapsed = std::chrono::duration<double, std::micro>(
                             Clock::now() - start)
                             .count();
    text_us = std::min(text_us, elapsed);
    if (i == 0) {
      auto fp = fingerprint(*lt, *ls, *ln, *lr);
      if (!fp.ok()) {
        std::fprintf(stderr, "%s\n", fp.status().ToString().c_str());
        return 1;
      }
      text_fingerprint = std::move(*fp);
    }
  }
  bool mmap_used = false;
  for (int i = 0; i < iters; ++i) {
    const auto start = Clock::now();
    auto mapped = bundle::MappedBundle::Map(binary_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 1;
    }
    auto lt = mapped->Teacher();
    auto ls = mapped->Student();
    auto ln = mapped->Normalizer();
    auto lr = mapped->Rungs();
    if (!lt.ok() || !ls.ok() || !ln.ok() || !lr.ok()) {
      std::fprintf(stderr, "binary load failed to materialize a model\n");
      return 1;
    }
    const auto elapsed = std::chrono::duration<double, std::micro>(
                             Clock::now() - start)
                             .count();
    binary_us = std::min(binary_us, elapsed);
    mmap_used = mapped->is_mapped();
    if (i == 0) {
      auto fp = fingerprint(*lt, *ls, *ln, *lr);
      if (!fp.ok()) {
        std::fprintf(stderr, "%s\n", fp.status().ToString().c_str());
        return 1;
      }
      binary_fingerprint = std::move(*fp);
    }
  }

  if (text_fingerprint != binary_fingerprint) {
    std::fprintf(stderr,
                 "FAIL: binary load materialized different model parameters "
                 "than the text load\n");
    return 1;
  }

  const auto text_size = std::filesystem::file_size(text_path);
  const auto binary_size = std::filesystem::file_size(binary_path);
  const double speedup = text_us / binary_us;
  std::printf("text    %10ju bytes  load %10.1f us  (%s)\n",
              static_cast<uintmax_t>(text_size), text_us, text_path.c_str());
  std::printf("binary  %10ju bytes  load %10.1f us  (%s, %s)\n",
              static_cast<uintmax_t>(binary_size), binary_us,
              binary_path.c_str(), mmap_used ? "mmap" : "read fallback");
  std::printf("speedup %.1fx, models bitwise identical\n", speedup);
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.1fx below --min-speedup %.1f\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

int CmdBundle(const std::string& sub, const Args& args) {
  if (sub == "pack") return CmdBundlePack(args);
  if (sub == "unpack") return CmdBundleUnpack(args);
  if (sub == "verify") return CmdBundleVerify(args);
  if (sub == "bench") return CmdBundleBench(args);
  std::fprintf(stderr, "unknown bundle subcommand '%s' "
                       "(want pack|unpack|verify|bench)\n", sub.c_str());
  return 2;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dnlr_cli <command> [--flag value ...]\n"
      "  gen           --out F [--queries N] [--features K] [--style "
      "msn|istella] [--seed S]\n"
      "  train-forest  --train F --out M [--valid F] [--trees N] [--leaves L]"
      " [--lr R] [--tune T]\n"
      "  distill       --train F --teacher M --arch AxBxC --out M [--prune "
      "0.97] [--epochs E]\n"
      "  score         --model M --data F [--out F|-] [--engine "
      "qs|vqs|wide|naive|dense|hybrid] [--time 1]\n"
      "  evaluate      --model M --data F [--engine ...]\n"
      "  predict-time  --arch AxBxC [--features K] [--batch N] [--sparsity "
      "S]\n"
      "  validate      [--model M] [--data F] [--features K] [--max-label "
      "L]\n"
      "  serve-bench   [--requests N] [--deadline-us U] [--workers W] "
      "[--threads T] [--fault-rate P] [--spike-rate P] [--spike-us U] "
      "[--nan-rate P] [--obs 1] [--obs-out F] [--out F] "
      "[--reload-every N [--bundle F]] | --shards N [--tenants M] "
      "[--abusive-tenant T] [--soak-ms D] [--baseline-ms D] [--pace-us U] "
      "[--quota-rate R] [--quota-burst B] [--burst-trigger P] [--burst-len N] "
      "[--p99-ratio X] [--p99-floor-us U] [--max-error-rate P]\n"
      "  soak-bench    [--duration-ms D] [--qps R] [--queries N] "
      "[--features K] [--workers W] [--deadline-us U] [--reload-every-ms D] "
      "[--poison-every N] [--zipf-exponent S] [--diurnal-amplitude A] "
      "[--diurnal-period-ms D] [--burst-probability P] [--cache-capacity N] "
      "[--cache-shards N] [--min-hit-rate R] [--max-shed-rate R] "
      "[--max-p99-us U] [--letor F] [--out F]\n"
      "  bundle pack   --out B [--in B] [--binary 1] [--teacher M] "
      "[--student M] [--norm-data F] "
      "[--rungs name:kind:us,...]\n"
      "  bundle unpack --in B [--out-dir D]\n"
      "  bundle verify --in B [--features K]\n"
      "  bundle bench  [--trees N] [--leaves L] [--arch AxBxC] [--features K] "
      "[--iters I] [--min-speedup X] [--dir D]\n"
      "  bench-scaling [--configs small,large] [--threads 1,2,4] "
      "[--arch AxBxC] [--features K] [--sparsity S] [--trees N] "
      "[--repeats R] [--min-t2-ratio R] [--min-t2-ratio-small R] "
      "[--obs 1] [--obs-out F] [--out F]\n"
      "  stats         [--in F] [--check 1] [--max-overhead-pct X] "
      "[--trials T] [--features K] [--queries N] [--seed S] [--out F|-]\n");
  return 2;
}

}  // namespace
}  // namespace dnlr::cli

int main(int argc, char** argv) {
  using namespace dnlr::cli;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "bundle") {
    if (argc < 3) return Usage();
    return CmdBundle(argv[2], Args(argc, argv, 3));
  }
  const Args args(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "train-forest") return CmdTrainForest(args);
  if (command == "distill") return CmdDistill(args);
  if (command == "score") return CmdScore(args);
  if (command == "evaluate") return CmdEvaluate(args);
  if (command == "predict-time") return CmdPredictTime(args);
  if (command == "validate") return CmdValidate(args);
  if (command == "serve-bench") return CmdServeBench(args);
  if (command == "soak-bench") return CmdSoakBench(args);
  if (command == "bench-scaling") return CmdBenchScaling(args);
  if (command == "stats") return CmdStats(args);
  return Usage();
}
