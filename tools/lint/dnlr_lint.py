#!/usr/bin/env python3
"""dnlr_lint: project-specific static checks clang-tidy cannot express.

Rules (all scoped to src/**/*.h, src/**/*.cc):

  dnlr-atomic-order        Every atomic load/store/RMW names an explicit
                           std::memory_order argument AND is covered by a
                           justifying comment (same line or within the
                           preceding 10 lines) that mentions the ordering
                           rationale (relaxed/acquire/release/... or
                           "ordering"). Defaulted seq_cst hides intent;
                           unexplained relaxed hides bugs.
  dnlr-naked-mutex         Outside src/common/, the std::mutex family
                           (mutex, lock_guard, unique_lock, scoped_lock,
                           condition_variable) is banned: all locking goes
                           through common::Mutex / MutexLock / CondVar so
                           every lock site carries thread-safety
                           annotations.
  dnlr-discarded-status    src/common/status.h must declare Status and
                           Result [[nodiscard]] (the compiler then rejects
                           silently dropped Status anywhere), and any
                           explicit `(void)` discard needs a justifying
                           comment on the same line.
  dnlr-raw-alloc           No `new` / `malloc` / `calloc` / `realloc` /
                           `free` in src/ — containers, arenas and RAII
                           only. (std::aligned_alloc pairs with std::free
                           inside the arena implementations; those sites
                           carry NOLINT with a reason.)
  dnlr-dcheck-side-effect  DNLR_DCHECK* arguments must be side-effect
                           free: the macro compiles out under NDEBUG, so a
                           mutation inside it changes release behavior.
  dnlr-nolint-reason       Every NOLINT comment must name its check and
                           carry a reason: `// NOLINT(<check>): <why>`.

Suppression: append `// NOLINT(dnlr-<rule>): <reason>` to the offending
line (or `// NOLINTNEXTLINE(dnlr-<rule>): <reason>` on the line above).
The reason is mandatory — enforced by dnlr-nolint-reason itself.

Usage:
  tools/lint/dnlr_lint.py [--root REPO_ROOT] [paths...]   # lint (default src/)
  tools/lint/dnlr_lint.py --self-test                     # fixture suite
  tools/lint/dnlr_lint.py --list-rules

Exit status: 0 clean, 1 findings (or failed self-test), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

RULES = (
    "dnlr-atomic-order",
    "dnlr-naked-mutex",
    "dnlr-discarded-status",
    "dnlr-raw-alloc",
    "dnlr-dcheck-side-effect",
    "dnlr-nolint-reason",
)

ATOMIC_OPS = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)

# Words that make a nearby comment count as an ordering justification.
ORDER_JUSTIFICATION = re.compile(
    r"relaxed|acquire|release|acq_rel|seq_cst|order|rcu|publication|"
    r"monotonic|statistic|visib|synchroniz",
    re.IGNORECASE,
)

MUTEX_TOKENS = re.compile(
    r"std\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)

RAW_ALLOC = re.compile(
    r"(?:^|[^\w.])(?:new\b|malloc\s*\(|calloc\s*\(|"
    r"realloc\s*\(|aligned_alloc\s*\(|free\s*\()"
)

VOID_DISCARD = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_:]")

DCHECK_CALL = re.compile(r"\bDNLR_DCHECK(?:_[A-Z]+)*\s*\(")

MUTATING_CALL = re.compile(
    r"(?:\.|->)\s*(push_back|push_front|pop_back|pop_front|erase|insert|"
    r"emplace|emplace_back|clear|reset|release|resize|assign|swap)\s*\("
)

NOLINT_ANY = re.compile(r"NOLINT(NEXTLINE)?")
NOLINT_WELL_FORMED = re.compile(
    r"NOLINT(?:NEXTLINE)?\(([A-Za-z0-9_.\-*,: ]+?)\)\s*:\s*\S"
)
NOLINT_DIRECTIVE = re.compile(r"NOLINT(NEXTLINE)?\(([^)]*)\)")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def split_code_and_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines): per source line, the code with
    comments and string/char literal contents blanked, and the comment text
    with everything else blanked. Column positions are preserved."""
    code: list[list[str]] = [[]]
    comment: list[list[str]] = [[]]
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append([])
            comment.append([])
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment[-1].append("//")
                code[-1].append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment[-1].append("/*")
                code[-1].append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            code[-1].append(c)
            comment[-1].append(" ")
            i += 1
            continue
        if state == "line_comment":
            comment[-1].append(c)
            code[-1].append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                comment[-1].append("*/")
                code[-1].append("  ")
                state = "code"
                i += 2
                continue
            comment[-1].append(c)
            code[-1].append(" ")
            i += 1
            continue
        # string / char literal: blank the contents in both channels so
        # neither rule patterns nor justification words match inside them.
        if c == "\\" and nxt:
            code[-1].append("  ")
            comment[-1].append("  ")
            i += 2
            continue
        if (state == "string" and c == '"') or (state == "char" and c == "'"):
            state = "code"
            code[-1].append(c)
        else:
            code[-1].append(" " if c != "\n" else c)
        comment[-1].append(" ")
        i += 1
    return ["".join(l) for l in code], ["".join(l) for l in comment]


def suppressed(rule: str, line_idx: int, comment_lines: list[str]) -> bool:
    """True when `rule` is NOLINT-suppressed at line_idx (0-based)."""
    for text, want_nextline in (
        (comment_lines[line_idx], False),
        (comment_lines[line_idx - 1] if line_idx > 0 else "", True),
    ):
        for m in NOLINT_DIRECTIVE.finditer(text):
            is_nextline = m.group(1) == "NEXTLINE"
            if is_nextline != want_nextline:
                continue
            checks = [c.strip() for c in m.group(2).split(",")]
            if rule in checks or "*" in checks:
                return True
    return False


def balanced_span(code_lines: list[str], line_idx: int, col: int,
                  max_lines: int = 12) -> str:
    """Text of a parenthesized call starting at code_lines[line_idx][col]
    (col points at the opening paren), spanning up to max_lines lines."""
    depth = 0
    out: list[str] = []
    for li in range(line_idx, min(line_idx + max_lines, len(code_lines))):
        segment = code_lines[li][col if li == line_idx else 0:]
        for ci, ch in enumerate(segment):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    out.append(segment[: ci + 1])
                    return "".join(out)
        out.append(segment)
    return "".join(out)  # unbalanced within the window; caller decides


def relpath_in(path: str, root: str) -> str:
    try:
        return os.path.relpath(path, root)
    except ValueError:
        return path


class Linter:
    def __init__(self, root: str):
        self.root = root
        self.findings: list[Finding] = []

    def lint_file(self, path: str) -> None:
        rel = relpath_in(path, self.root).replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError) as e:
            self.findings.append(Finding(rel, 1, "dnlr-io", f"unreadable: {e}"))
            return
        code, comments = split_code_and_comments(text)

        self._check_atomic_order(rel, code, comments)
        self._check_naked_mutex(rel, code, comments)
        self._check_void_discard(rel, code, comments)
        self._check_raw_alloc(rel, code, comments)
        self._check_dcheck_side_effect(rel, code, comments)
        self._check_nolint_reason(rel, comments)
        if rel.endswith("common/status.h"):
            self._check_nodiscard_status(rel, code)

    def _emit(self, rel: str, idx: int, rule: str, msg: str,
              comments: list[str]) -> None:
        if not suppressed(rule, idx, comments):
            self.findings.append(Finding(rel, idx + 1, rule, msg))

    def _check_atomic_order(self, rel: str, code: list[str],
                            comments: list[str]) -> None:
        for idx, line in enumerate(code):
            for m in ATOMIC_OPS.finditer(line):
                op = m.group(1)
                call = balanced_span(code, idx, m.end() - 1)
                if "memory_order" not in call:
                    self._emit(
                        rel, idx, "dnlr-atomic-order",
                        f"atomic {op}() without an explicit std::memory_order "
                        "(defaulted seq_cst hides intent)", comments)
                    continue
                window = comments[max(0, idx - 10): idx + 1]
                if not any(ORDER_JUSTIFICATION.search(c) for c in window):
                    self._emit(
                        rel, idx, "dnlr-atomic-order",
                        f"atomic {op}() lacks a justifying comment within the "
                        "10 preceding lines (say why this ordering is "
                        "sufficient)", comments)

    def _check_naked_mutex(self, rel: str, code: list[str],
                           comments: list[str]) -> None:
        if rel.startswith("src/common/") or rel.startswith("common/"):
            return
        for idx, line in enumerate(code):
            m = MUTEX_TOKENS.search(line)
            if m:
                self._emit(
                    rel, idx, "dnlr-naked-mutex",
                    f"std::{m.group(1)} outside common/ — use common::Mutex / "
                    "common::MutexLock / common::CondVar (annotated for "
                    "thread-safety analysis)", comments)

    def _check_void_discard(self, rel: str, code: list[str],
                            comments: list[str]) -> None:
        for idx, line in enumerate(code):
            if VOID_DISCARD.search(line):
                has_reason = comments[idx].strip() or (
                    idx > 0 and "NOLINTNEXTLINE" in comments[idx - 1])
                if not has_reason:
                    self._emit(
                        rel, idx, "dnlr-discarded-status",
                        "explicit (void) discard without a same-line comment "
                        "explaining why the result is safe to drop", comments)

    def _check_raw_alloc(self, rel: str, code: list[str],
                         comments: list[str]) -> None:
        for idx, line in enumerate(code):
            # `#include <new>` and friends are not allocations.
            if line.lstrip().startswith("#"):
                continue
            m = RAW_ALLOC.search(line)
            if m:
                self._emit(
                    rel, idx, "dnlr-raw-alloc",
                    "raw allocation (new/malloc/free family) in src/ — use "
                    "containers, arenas, or RAII wrappers", comments)

    def _check_dcheck_side_effect(self, rel: str, code: list[str],
                                  comments: list[str]) -> None:
        for idx, line in enumerate(code):
            for m in DCHECK_CALL.finditer(line):
                args = balanced_span(code, idx, m.end() - 1)
                if MUTATING_CALL.search(args):
                    self._emit(
                        rel, idx, "dnlr-dcheck-side-effect",
                        "DNLR_DCHECK argument calls a mutating method — the "
                        "check compiles out under NDEBUG", comments)
                    continue
                if self._has_assignment_or_incdec(args):
                    self._emit(
                        rel, idx, "dnlr-dcheck-side-effect",
                        "DNLR_DCHECK argument contains an assignment or "
                        "++/-- — the check compiles out under NDEBUG",
                        comments)

    @staticmethod
    def _has_assignment_or_incdec(args: str) -> bool:
        if "++" in args or "--" in args:
            return True
        # Blank out comparison operators, then any surviving '=' is an
        # assignment (including compound ones like += and |=).
        cleaned = re.sub(r"==|!=|<=|>=", "  ", args)
        return "=" in cleaned

    def _check_nolint_reason(self, rel: str, comments: list[str]) -> None:
        for idx, text in enumerate(comments):
            for m in NOLINT_ANY.finditer(text):
                rest = text[m.start():]
                if not NOLINT_WELL_FORMED.match(rest):
                    # Can't be NOLINT-suppressed: a malformed NOLINT is the
                    # finding itself.
                    self.findings.append(Finding(
                        rel, idx + 1, "dnlr-nolint-reason",
                        "NOLINT must name its check and carry a reason: "
                        "`NOLINT(<check>): <why>`"))

    def _check_nodiscard_status(self, rel: str, code: list[str]) -> None:
        text = "\n".join(code)
        for cls in ("Status", "Result"):
            if not re.search(
                    rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
                self.findings.append(Finding(
                    rel, 1, "dnlr-discarded-status",
                    f"class {cls} must be declared [[nodiscard]] so a "
                    "dropped error is a compile-time warning"))


def collect_files(root: str, paths: list[str]) -> list[str]:
    if not paths:
        paths = [os.path.join(root, "src")]
    out: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
            continue
        for dirpath, _dirnames, filenames in os.walk(p):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def run_lint(root: str, paths: list[str]) -> int:
    linter = Linter(root)
    files = collect_files(root, paths)
    if not files:
        print("dnlr_lint: no input files", file=sys.stderr)
        return 2
    for f in files:
        linter.lint_file(f)
    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(f"dnlr_lint: {len(linter.findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"dnlr_lint: clean ({len(files)} files)")
    return 0


def run_self_test() -> int:
    """Each rule has a good/bad fixture pair under fixtures/: the bad file
    must trigger exactly that rule, the good file must be fully clean."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")
    failures: list[str] = []
    cases = 0
    for rule in RULES:
        stem = rule.removeprefix("dnlr-").replace("-", "_")
        for kind in ("good", "bad"):
            path = os.path.join(fixtures, f"{stem}_{kind}.cc")
            if not os.path.exists(path):
                failures.append(f"{rule}: missing fixture {path}")
                continue
            cases += 1
            # Fixtures lint with rel = bare filename, so the path-scoped
            # exemption for src/common/ does not apply — every rule is live.
            linter = Linter(fixtures)
            linter.lint_file(path)
            hits = {f.rule for f in linter.findings}
            if kind == "bad" and rule not in hits:
                failures.append(
                    f"{rule}: bad fixture produced no {rule} finding "
                    f"(got: {sorted(hits) or 'none'})")
            if kind == "good" and hits:
                failures.append(
                    f"{rule}: good fixture is not clean (got: {sorted(hits)})")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"dnlr_lint self-test: {cases} fixture cases OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="dnlr_lint.py",
        description="Project-specific static checks (see module docstring).")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the good/bad fixture suite and exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: <root>/src)")
    args = parser.parse_args()

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return run_self_test()
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    return run_lint(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
