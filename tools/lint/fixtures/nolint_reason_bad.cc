// dnlr-nolint-reason BAD fixture: bare and reason-less suppressions.
int Implicit(int v) { return v; }  // NOLINT

int AlsoImplicit(int v) { return v; }  // NOLINT(runtime/explicit)
