// dnlr-discarded-status GOOD fixture: the discard explains itself.
int ComputeChecksum();

void Ignore() {
  (void)ComputeChecksum();  // warm-up call: only the second checksum is used
}
