// dnlr-nolint-reason GOOD fixture: every suppression names its check and
// says why it is justified.
int Implicit(int v) { return v; }  // NOLINT(google-explicit-constructor): value-to-Result implicit conversion is the API

// NOLINTNEXTLINE(readability-identifier-naming): mirrors the paper's symbol
int kPaperSymbol_q = 0;
