// dnlr-raw-alloc GOOD fixture: containers and smart pointers only; one
// unavoidable raw site carries the mandatory suppression-with-reason.
#include <cstdlib>
#include <memory>
#include <vector>

std::vector<int> MakeVector() { return std::vector<int>(16, 0); }

std::unique_ptr<int[]> MakeOwned() { return std::make_unique<int[]>(16); }

void* AlignedArena(size_t bytes) {
  // NOLINTNEXTLINE(dnlr-raw-alloc): SIMD arena needs 64-byte alignment
  return std::aligned_alloc(64, bytes);
}
