// dnlr-atomic-order BAD fixture: one defaulted-order op, one explicit op
// with no justifying comment anywhere near it.
#include <atomic>

std::atomic<int> g_count{0};
std::atomic<int> g_other{0};

int DefaultedOrder() {
  return g_count.load();  // no memory_order argument at all
}

void ExplicitButUnjustified() {
  int x = 1;
  int y = 2;
  int z = x + y;
  (void)z;  // arithmetic filler so no nearby text explains the op below
  int a = 3;
  int b = 4;
  int c = a + b;
  (void)c;  // more filler
  int d = 5;
  int e = 6;
  g_other.store(d + e, std::memory_order_relaxed);
}
