// dnlr-dcheck-side-effect GOOD fixture: pure reads inside the check; the
// mutation happens outside it.
#include <vector>

#define DNLR_DCHECK(cond) ((void)(cond))
#define DNLR_DCHECK_GT(a, b) ((void)((a) > (b)))

void Good(std::vector<int>& v, int& counter) {
  ++counter;
  DNLR_DCHECK(counter > 0);
  DNLR_DCHECK_GT(v.size(), 0u);
  DNLR_DCHECK(v.front() <= v.back());
}
