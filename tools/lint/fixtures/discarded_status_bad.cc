// dnlr-discarded-status BAD fixture: a (void) discard with no explanation.
int ComputeChecksum();

void Ignore() {
  (void)ComputeChecksum();
}
