// dnlr-raw-alloc BAD fixture: naked new/malloc/free.
#include <cstdlib>

int* Allocate() {
  int* a = new int[16];
  void* b = std::malloc(64);
  std::free(b);
  return a;
}
