// dnlr-atomic-order GOOD fixture: explicit orders, each with a nearby
// justification.
#include <atomic>

std::atomic<int> g_count{0};

int Read() {
  // Relaxed is enough: the counter is an independent statistic, not a
  // synchronization point.
  return g_count.load(std::memory_order_relaxed);
}

void Bump() {
  // Relaxed increment: monotonic event count, readers tolerate staleness.
  g_count.fetch_add(1, std::memory_order_relaxed);
}
