// dnlr-naked-mutex BAD fixture: std::mutex family used outside common/.
#include <mutex>

std::mutex g_mu;
int g_value = 0;

void Set(int v) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_value = v;
}
