// dnlr-naked-mutex GOOD fixture: locking through the annotated wrapper.
#include "common/mutex.h"
#include "common/thread_annotations.h"

dnlr::common::Mutex g_mu;
int g_value DNLR_GUARDED_BY(g_mu) = 0;

void Set(int v) {
  dnlr::common::MutexLock lock(g_mu);
  g_value = v;
}
