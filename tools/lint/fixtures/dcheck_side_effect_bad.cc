// dnlr-dcheck-side-effect BAD fixture: mutations inside DNLR_DCHECK — they
// vanish under NDEBUG and change release behavior.
#include <vector>

#define DNLR_DCHECK(cond) ((void)(cond))
#define DNLR_DCHECK_GT(a, b) ((void)((a) > (b)))

void Bad(std::vector<int>& v, int& counter) {
  DNLR_DCHECK(++counter > 0);
  DNLR_DCHECK_GT(v.erase(v.begin()) != v.end(), false);
}
