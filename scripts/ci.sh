#!/usr/bin/env bash
# Local CI gate: the release and asan-ubsan presets must build and pass
# ctest with zero sanitizer reports, and the tsan preset must pass the
# `threaded` test subset (the serving engine's worker-pool tests) with zero
# data-race reports. UBSan findings are fatal at runtime
# (-fno-sanitize-recover=all) and ASan/LSan/TSan errors fail their process,
# so any report fails its test; as a belt-and-braces measure the ctest logs
# are also grepped for report signatures afterwards.
#
# Usage: scripts/ci.sh            (from anywhere; jobs via DNLR_JOBS)
set -euo pipefail
cd "$(dirname "$0")/.."

# Static analysis first: the lint layer needs no build at all, so style and
# concurrency-hygiene findings fail the run in seconds, before any compile.
# clang-tidy and the -Wthread-safety build run when their toolchain is
# installed and skip with a notice when it is not (see scripts/tidy.sh).
scripts/tidy.sh

scripts/check.sh release asan-ubsan

# The tsan preset is gated to the threaded label: TSan only pays off on
# tests that actually run concurrent code, and the full suite under TSan's
# 5-15x slowdown would dominate CI time.
DNLR_TEST_ARGS="-L threaded" scripts/check.sh tsan

# Threading-regression gates: the scaling bench runs both workload configs
# with the release binary and fails the run (exit 1) if either gate trips.
#   small — tiny per-call batches near the parallel crossover. T=2 must stay
#           within 5% of T=1 (ratio >= 0.95): threading may never tax small
#           batches, on any machine.
#   large — the throughput workload (60 queries, 256x128x64 dense rung).
#           With >= 2 hardware threads T=2 must reach >= 1.5x T=1; on a
#           single-core runner no speedup is physically available, so the
#           gate degrades to the same 0.95 no-regression bound (the measured
#           crossover pins every engine serial there, making T=2 == T=1 up
#           to noise).
echo "==== [bench-scaling] small + large workload gates (T=1,2)"
cores="$(nproc 2>/dev/null || echo 1)"
if [ "${cores}" -ge 2 ]; then
  large_gate=1.5
else
  large_gate=0.95
  echo "bench-scaling: single-core runner, large-config gate 1.5 -> 0.95"
fi
out/release/tools/dnlr_cli bench-scaling \
  --configs small,large --repeats 3 --threads 1,2 \
  --min-t2-ratio "${large_gate}" --min-t2-ratio-small 0.95 \
  --out out/bench_scaling_ci.json >/dev/null

# Observability guarantees: scoring with spans enabled must be bitwise
# identical to scoring with them off (--check 1), and enabled spans may not
# slow the GEMM microbench by more than 3% (best-of-trials on both sides,
# so scheduler noise cannot fail the gate spuriously). The exported registry
# report must round-trip the JSON validator.
echo "==== [stats] instrumentation gates (bitwise + <3% overhead)"
out/release/tools/dnlr_cli stats \
  --check 1 --max-overhead-pct 3 --trials 5 \
  --queries 8 --out out/obs_stats_ci.json >/dev/null
out/release/tools/dnlr_cli stats --in out/obs_stats_ci.json >/dev/null

# Bundle gates: pack a bundle from artifacts trained in this run, verify it
# (magic/version/CRC plus every section re-parsed and run through the
# invariant suites), then swap bundles under sustained load. serve-bench
# --reload-every exits non-zero unless every swap completed, the golden-score
# gate rejected nothing, and no request failed across any swap. The
# reload-under-load gtest suite additionally runs under tsan above (it
# carries the `threaded` label).
echo "==== [bundle] pack -> verify -> reload-under-load smoke"
out/release/tools/dnlr_cli gen --out out/ci_bundle_data.tsv \
  --queries 24 --features 16 --seed 7 >/dev/null
out/release/tools/dnlr_cli train-forest --train out/ci_bundle_data.tsv \
  --out out/ci_bundle_teacher.txt --trees 5 --leaves 8 >/dev/null
out/release/tools/dnlr_cli distill --train out/ci_bundle_data.tsv \
  --teacher out/ci_bundle_teacher.txt --arch 16x8 --epochs 2 \
  --out out/ci_bundle_student.txt >/dev/null
out/release/tools/dnlr_cli bundle pack --out out/ci_model.bundle \
  --teacher out/ci_bundle_teacher.txt --student out/ci_bundle_student.txt \
  --norm-data out/ci_bundle_data.tsv \
  --rungs student:student:3.0,cascade:cascade:1.5,floor:teacher-subset:0.5 \
  >/dev/null
out/release/tools/dnlr_cli bundle verify --in out/ci_model.bundle >/dev/null
out/release/tools/dnlr_cli serve-bench --reload-every 25 --requests 100 \
  --out out/serve_reload_ci.json >/dev/null

# Binary-bundle gates: convert the packed text bundle to the v2 binary
# container, verify it (map-time structural pass + deferred payload CRC
# sweep + the same deep section validation the text path gets), prove the
# conversion round-trips to the original text bytes, and gate the load-path
# speedup: `bundle bench` packs one model both ways, times cold loads, and
# exits non-zero unless the mmap'ed binary load is >= 10x faster than the
# text parse AND materializes bitwise-identical parameters. Finally swap
# the *binary* twin under sustained load — serve-bench --binary 1 captures
# golden scores from the text-loaded generation and requires every
# binary-loaded swap to reproduce them bitwise.
echo "==== [bundle] binary container: convert -> verify -> bench -> reload"
out/release/tools/dnlr_cli bundle pack --in out/ci_model.bundle \
  --out out/ci_model.bundle.bin --binary 1 >/dev/null
out/release/tools/dnlr_cli bundle verify --in out/ci_model.bundle.bin \
  >/dev/null
out/release/tools/dnlr_cli bundle pack --in out/ci_model.bundle.bin \
  --out out/ci_model.roundtrip.bundle >/dev/null
cmp out/ci_model.bundle out/ci_model.roundtrip.bundle || {
  echo "ci.sh: text -> binary -> text round trip is not byte-identical" >&2
  exit 1
}
out/release/tools/dnlr_cli bundle bench --min-speedup 10 \
  --dir out >/dev/null
out/release/tools/dnlr_cli serve-bench --reload-every 25 --requests 100 \
  --binary 1 --out out/serve_reload_binary_ci.json >/dev/null

# Sharded multi-tenant isolation soak: 4 fault-injected shards, 8 tenants,
# tenant 0 hammering a tight quota, and one shard taken through a
# correlated-burst outage (shipped and rolled back via model swap).
# serve-bench --shards exits non-zero unless the isolation SLO holds: the
# abusive tenant is quota-rejected at its configured rate, every other
# tenant's p99 and error rate stay within budget, the faulted shard
# quarantines and is probe-readmitted, and no swap fails. The router's
# deterministic lifecycle walk and the multi-threaded isolation gtest run
# under tsan above (router_test carries the `threaded` label).
echo "==== [serve-bench] sharded multi-tenant isolation soak gate"
out/release/tools/dnlr_cli serve-bench --shards 4 --tenants 8 \
  --abusive-tenant 0 --soak-ms 2000 \
  --out out/serve_shard_ci.json >/dev/null

# Traffic-replay soak: a 3 s Zipfian replay (mixed candidate-set sizes,
# diurnal + burst load) against one engine with the hot score cache, under
# periodic golden-gated hot reloads, a poisoned-bundle rejection probe, a
# mid-soak fault episode, a streaming LETOR pass and a cache-on/off bitwise
# parity sweep. soak-bench exits non-zero unless every SLO gate holds:
# cache hit rate >= 50% on the Zipfian phase, shed rate <= 5%, zero
# internal failures, per-rung p99 within the deadline, every good reload
# accepted and the poisoned one rejected, at least one cross-generation
# stale-entry reject, and bitwise score parity with caching off.
echo "==== [soak-bench] traffic-replay soak + score-cache SLO gate"
out/release/tools/dnlr_cli soak-bench --duration-ms 3000 --qps 600 \
  --queries 48 --features 32 --reload-every-ms 700 --min-hit-rate 0.5 \
  --out out/soak_ci.json >/dev/null

fail=0
for preset in asan-ubsan tsan; do
  log="out/${preset}/Testing/Temporary/LastTest.log"
  if [ -f "${log}" ] && grep -nE \
      "ERROR: (Address|Leak|Thread|Memory)Sanitizer|WARNING: ThreadSanitizer|runtime error:|SUMMARY: UndefinedBehaviorSanitizer" \
      "${log}"; then
    echo "ci.sh: sanitizer reports found in ${log}" >&2
    fail=1
  fi
done
[ "${fail}" -eq 0 ] || exit 1
echo "ci.sh: static analysis + release + asan-ubsan + tsan(threaded) +" \
     "scaling small/large gates + bundle verify/reload (text + binary," \
     "10x load gate) + tenant-isolation soak + traffic-replay soak" \
     "(score-cache SLO) gates green, no sanitizer reports"
