#!/usr/bin/env bash
# Local CI gate: the release and asan-ubsan presets must build and pass
# ctest with zero sanitizer reports. UBSan findings are fatal at runtime
# (-fno-sanitize-recover=all) and ASan/LSan errors fail their process, so
# any report fails its test; as a belt-and-braces measure the ctest log is
# also grepped for report signatures afterwards.
#
# Usage: scripts/ci.sh            (from anywhere; jobs via DNLR_JOBS)
set -euo pipefail
cd "$(dirname "$0")/.."

scripts/check.sh release asan-ubsan

log="out/asan-ubsan/Testing/Temporary/LastTest.log"
if [ -f "${log}" ] && grep -nE \
    "ERROR: (Address|Leak|Thread|Memory)Sanitizer|runtime error:|SUMMARY: UndefinedBehaviorSanitizer" \
    "${log}"; then
  echo "ci.sh: sanitizer reports found in ${log}" >&2
  exit 1
fi
echo "ci.sh: release + asan-ubsan green, no sanitizer reports"
