#!/usr/bin/env bash
# Builds and runs ctest under every preset of the verification matrix, or
# the subset named on the command line:
#
#   scripts/check.sh                 # release, asan-ubsan, tsan
#   scripts/check.sh asan-ubsan      # one preset
#
# Environment:
#   DNLR_JOBS       parallel build/test jobs (default: nproc)
#   DNLR_TEST_ARGS  extra ctest arguments, e.g. "-L sanitizer-clean"
#
# See the "Verification matrix" section of DESIGN.md.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan-ubsan tsan)
fi
jobs="${DNLR_JOBS:-$(nproc)}"

for preset in "${presets[@]}"; do
  echo "==== [${preset}] configure"
  cmake --preset "${preset}"
  echo "==== [${preset}] build"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==== [${preset}] test"
  # shellcheck disable=SC2086  # DNLR_TEST_ARGS is intentionally word-split.
  ctest --preset "${preset}" -j "${jobs}" ${DNLR_TEST_ARGS:-}
  echo "==== [${preset}] OK"
done
echo "verification matrix passed: ${presets[*]}"
