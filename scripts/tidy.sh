#!/usr/bin/env bash
# Static-analysis gate. Three layers, each skipped gracefully when its
# toolchain is absent so the gate degrades instead of lying:
#
#   1. tools/lint/dnlr_lint.py  — repo-specific rules (atomic memory orders,
#      naked mutexes, raw allocation, DCHECK purity, NOLINT hygiene).
#      Needs only python3; always runs. Non-zero on any finding.
#   2. clang-tidy over src/ + tools/ against the `tidy` preset's
#      compile_commands.json, with the curated .clang-tidy config
#      (WarningsAsErrors: '*'). Skipped with a notice when clang-tidy is
#      not installed.
#   3. Clang -Wthread-safety build: when a clang++ is installed, the tidy
#      preset is reconfigured with CC=clang CXX=clang++, which turns on
#      -Werror=thread-safety (see CMakeLists.txt) and the negative-compile
#      tests (tests/negative_compile/). Skipped with a notice otherwise —
#      the annotations compile to nothing under GCC.
#
# Usage: scripts/tidy.sh           (from anywhere; jobs via DNLR_JOBS)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${DNLR_JOBS:-$(nproc)}"
skipped=()

echo "==== [lint] dnlr_lint.py (repo-specific rules)"
python3 tools/lint/dnlr_lint.py --self-test
python3 tools/lint/dnlr_lint.py --root .

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==== [tidy] configure (compile_commands.json)"
  cmake --preset tidy >/dev/null
  echo "==== [tidy] clang-tidy over src/ and tools/"
  # Headers are covered via HeaderFilterRegex when their includers compile.
  find src tools -name '*.cc' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p out/tidy --quiet
  echo "==== [tidy] OK"
else
  echo "==== [tidy] SKIP: clang-tidy not installed"
  skipped+=(clang-tidy)
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "==== [thread-safety] clang build with -Werror=thread-safety"
  CC=clang CXX=clang++ cmake --preset tidy -B out/tidy-clang >/dev/null
  cmake --build out/tidy-clang -j "${jobs}"
  echo "==== [thread-safety] negative-compile + lint tests"
  ctest --test-dir out/tidy-clang -L static-analysis --output-on-failure
  echo "==== [thread-safety] OK"
else
  echo "==== [thread-safety] SKIP: clang++ not installed" \
       "(annotations are no-ops under this compiler)"
  skipped+=(clang-thread-safety)
fi

if [ ${#skipped[@]} -gt 0 ]; then
  echo "tidy.sh: lint gate green; skipped without toolchain: ${skipped[*]}"
else
  echo "tidy.sh: lint + clang-tidy + thread-safety gates green"
fi
